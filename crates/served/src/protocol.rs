//! The versioned wire vocabulary: every frame either direction, typed.
//!
//! One handshake, three commands, and their replies:
//!
//! | client → server | server → client |
//! |---|---|
//! | `hello` (identity + protocol) | `welcome` (points, designs, quotas) or fatal `error` |
//! | `submit` (tagged evaluation) | tagged `result` or tagged `error` |
//! | `stats` (tagged) | tagged `stats` (serve + daemon snapshots) |
//! | `bye` | `bye`, then close |
//!
//! Circuits travel in either of two formats under `submit.circuit`:
//! structured JSON (`{"format": "json", "circuit": {...}}`, the layout
//! of [`Circuit::to_json`]) or OpenQASM 2.0 text (`{"format": "qasm",
//! "source": "..."}`, fed through [`from_qasm`]). Both preserve the
//! circuit's [`fingerprint`](Circuit::fingerprint), so wire submissions
//! hit the same warm compile caches as in-process requests.
//!
//! Errors are typed end-to-end: [`WireError`] carries the admission
//! backpressure signals (`overloaded` straight from
//! [`ServeError::Overloaded`](dqc_serve::ServeError#variant.Overloaded),
//! `quota_exceeded` from the daemon's multi-tenant ledger) and
//! `bad_request` with the QASM parse line, forwarded verbatim from
//! [`ParseQasmError`](dqc_circuit::ParseQasmError).

use dqc_circuit::{from_qasm, Circuit};
use dqc_core::{Design, ExecutionReport};
use dqc_obs::{Capture, MetricsSnapshot, TraceId};
use dqc_serve::{EvalRequest, ServeConfig, ServeError, ServeStats};
use dqc_types::{Diagnostic, Json, JsonError};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Version of the frame vocabulary. A mismatching `hello` is refused
/// with a fatal `protocol` error naming both versions.
///
/// v2: `welcome` carries a `config` echo (the daemon's full
/// [`ServeConfig`]) so clients can introspect limits; the `stats` reply's
/// serve snapshot gained fusion/autoscale counters and per-shard worker
/// placements.
///
/// v3: observability. Every admitted submission gets a server-minted
/// trace identity, echoed as an optional `trace_id` on its `result` or
/// `error` reply; two new tagged commands — `metrics` (the raw
/// [`MetricsSnapshot`] behind the stats roll-up, histograms included)
/// and `trace` (the daemon's recent span/event ring as a
/// [`Capture`]) — expose the live registry and trace buffer.
pub const PROTOCOL_VERSION: i64 = 3;

/// The server identity string sent in `welcome`.
pub const SERVER_NAME: &str = concat!("dqc-served/", env!("CARGO_PKG_VERSION"));

// ------------------------------------------------------------- errors

/// Which per-client quota refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaScope {
    /// Too many of the client's requests are in flight at once.
    InFlight,
    /// The client's sustained submission rate exceeded its token bucket.
    Rate,
}

impl QuotaScope {
    /// The wire spelling of the scope.
    pub const fn name(self) -> &'static str {
        match self {
            QuotaScope::InFlight => "in_flight",
            QuotaScope::Rate => "rate",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "in_flight" => Some(QuotaScope::InFlight),
            "rate" => Some(QuotaScope::Rate),
            _ => None,
        }
    }
}

/// A typed wire-level error, serialized under `error.kind`.
///
/// The first three variants are the visible ends of the admission
/// pipeline: `Overloaded` is the shard queue saying no (global
/// backpressure), `QuotaExceeded` is the multi-tenant ledger saying no
/// (one client asking for more than its share), and `BadRequest` is the
/// front door saying no (malformed circuit, unknown design, zero runs)
/// — with the QASM parse line forwarded verbatim when there is one.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The target shard's queue is at capacity (retryable backpressure).
    Overloaded {
        /// The hardware point whose shard refused the request.
        point: String,
        /// The shard's queue capacity.
        capacity: usize,
    },
    /// A per-client quota refused the submission.
    QuotaExceeded {
        /// The client identity (from the `hello` frame) that was over.
        client: String,
        /// Which quota tripped.
        scope: QuotaScope,
        /// The configured limit (requests for `in_flight`, requests per
        /// second for `rate`).
        limit: f64,
    },
    /// The request itself is malformed and will never succeed as sent.
    BadRequest {
        /// What was wrong, verbatim from the decoder that rejected it.
        message: String,
        /// 1-based source line for QASM parse errors, absent otherwise.
        line: Option<usize>,
    },
    /// The request names a hardware point the daemon does not serve.
    UnknownPoint {
        /// The unrecognized point label.
        point: String,
    },
    /// Static analysis proved the submission can never execute on its
    /// target point (for example a stabilizer backend asked to run a
    /// non-Clifford circuit). Carries the full structured findings so
    /// clients can render or machine-triage them; never retryable.
    Rejected {
        /// The hardware point the submission targeted.
        point: String,
        /// The analyzer's findings, every one error-severity.
        diagnostics: Vec<Diagnostic>,
    },
    /// The evaluation engine failed the request after admission.
    Engine {
        /// The engine error, stringified.
        message: String,
    },
    /// The conversation itself is broken (bad handshake, unknown frame
    /// type, version mismatch). Fatal: the sender closes after this.
    Protocol {
        /// What broke.
        message: String,
    },
}

impl WireError {
    /// The wire spelling of the error kind.
    pub const fn kind(&self) -> &'static str {
        match self {
            WireError::Overloaded { .. } => "overloaded",
            WireError::QuotaExceeded { .. } => "quota_exceeded",
            WireError::BadRequest { .. } => "bad_request",
            WireError::UnknownPoint { .. } => "unknown_point",
            WireError::Rejected { .. } => "rejected",
            WireError::Engine { .. } => "engine",
            WireError::Protocol { .. } => "protocol",
        }
    }

    /// Whether retrying the same request later can succeed (admission
    /// backpressure) as opposed to a request that will always fail.
    pub const fn is_backpressure(&self) -> bool {
        matches!(
            self,
            WireError::Overloaded { .. } | WireError::QuotaExceeded { .. }
        )
    }

    /// Serializes the error as the wire's `error` object.
    pub fn to_json(&self) -> Json {
        match self {
            WireError::Overloaded { point, capacity } => Json::object([
                ("kind", Json::from(self.kind())),
                ("point", Json::from(point.as_str())),
                ("capacity", Json::from(*capacity)),
            ]),
            WireError::QuotaExceeded {
                client,
                scope,
                limit,
            } => Json::object([
                ("kind", Json::from(self.kind())),
                ("client", Json::from(client.as_str())),
                ("scope", Json::from(scope.name())),
                ("limit", Json::float(*limit)),
            ]),
            WireError::BadRequest { message, line } => Json::object([
                ("kind", Json::from(self.kind())),
                ("message", Json::from(message.as_str())),
                ("line", line.map_or(Json::Null, Json::from)),
            ]),
            WireError::UnknownPoint { point } => Json::object([
                ("kind", Json::from(self.kind())),
                ("point", Json::from(point.as_str())),
            ]),
            WireError::Rejected { point, diagnostics } => Json::object([
                ("kind", Json::from(self.kind())),
                ("point", Json::from(point.as_str())),
                (
                    "diagnostics",
                    Json::from(
                        diagnostics
                            .iter()
                            .map(Diagnostic::to_json)
                            .collect::<Vec<_>>(),
                    ),
                ),
            ]),
            WireError::Engine { message } | WireError::Protocol { message } => Json::object([
                ("kind", Json::from(self.kind())),
                ("message", Json::from(message.as_str())),
            ]),
        }
    }

    /// Reads an error back from [`WireError::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on an unknown kind or missing field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let kind = json.str_field("kind")?;
        Ok(match kind {
            "overloaded" => WireError::Overloaded {
                point: json.str_field("point")?.to_string(),
                capacity: json.usize_field("capacity")?,
            },
            "quota_exceeded" => WireError::QuotaExceeded {
                client: json.str_field("client")?.to_string(),
                scope: {
                    let scope = json.str_field("scope")?;
                    QuotaScope::from_name(scope).ok_or_else(|| {
                        JsonError::schema(format!("unknown quota scope `{scope}`"))
                    })?
                },
                limit: json.f64_field("limit")?,
            },
            "bad_request" => WireError::BadRequest {
                message: json.str_field("message")?.to_string(),
                line: match json.field("line")? {
                    Json::Null => None,
                    value => Some(
                        value
                            .as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| {
                                JsonError::schema("field `line`: expected a line number or null")
                            })?,
                    ),
                },
            },
            "unknown_point" => WireError::UnknownPoint {
                point: json.str_field("point")?.to_string(),
            },
            "rejected" => WireError::Rejected {
                point: json.str_field("point")?.to_string(),
                diagnostics: json
                    .array_field("diagnostics")?
                    .iter()
                    .map(Diagnostic::from_json)
                    .collect::<Result<_, _>>()?,
            },
            "engine" => WireError::Engine {
                message: json.str_field("message")?.to_string(),
            },
            "protocol" => WireError::Protocol {
                message: json.str_field("message")?.to_string(),
            },
            other => return Err(JsonError::schema(format!("unknown error kind `{other}`"))),
        })
    }

    /// Maps a serving-layer refusal onto its wire form.
    pub fn from_serve(e: ServeError) -> Self {
        match e {
            ServeError::Overloaded { point, capacity } => WireError::Overloaded { point, capacity },
            ServeError::UnknownPoint { point } => WireError::UnknownPoint { point },
            ServeError::Engine(e) => WireError::Engine {
                message: e.to_string(),
            },
            other => WireError::Protocol {
                message: other.to_string(),
            },
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overloaded { point, capacity } => write!(
                f,
                "shard `{point}` is overloaded (queue at capacity {capacity}); retry later"
            ),
            WireError::QuotaExceeded {
                client,
                scope,
                limit,
            } => write!(
                f,
                "client `{client}` exceeded its {} quota of {limit}",
                scope.name()
            ),
            WireError::BadRequest {
                message,
                line: Some(line),
            } => write!(f, "bad request at line {line}: {message}"),
            WireError::BadRequest {
                message,
                line: None,
            } => write!(f, "bad request: {message}"),
            WireError::UnknownPoint { point } => {
                write!(f, "no shard serves hardware point `{point}`")
            }
            WireError::Rejected { point, diagnostics } => {
                write!(
                    f,
                    "submission statically rejected for point `{point}`: {} finding(s)",
                    diagnostics.len()
                )?;
                for diagnostic in diagnostics {
                    write!(f, "; {diagnostic}")?;
                }
                Ok(())
            }
            WireError::Engine { message } => write!(f, "evaluation failed: {message}"),
            WireError::Protocol { message } => write!(f, "protocol error: {message}"),
        }
    }
}

impl Error for WireError {}

// -------------------------------------------------------- submissions

/// How a submitted circuit travels on the wire.
///
/// Both forms decode to the *same* [`Circuit`] — fingerprint included —
/// so the choice is purely about the client: structured JSON for
/// programmatic callers, QASM text for anything that already speaks
/// OpenQASM 2.0.
#[derive(Debug, Clone)]
pub enum CircuitPayload {
    /// A structured circuit in the [`Circuit::to_json`] layout.
    Structured(Arc<Circuit>),
    /// OpenQASM 2.0 source text, parsed server-side by [`from_qasm`].
    Qasm(String),
}

impl CircuitPayload {
    /// Serializes the payload as the wire's `circuit` object.
    pub fn to_json(&self) -> Json {
        match self {
            CircuitPayload::Structured(circuit) => Json::object([
                ("format", Json::from("json")),
                ("circuit", circuit.to_json()),
            ]),
            CircuitPayload::Qasm(source) => Json::object([
                ("format", Json::from("qasm")),
                ("source", Json::from(source.as_str())),
            ]),
        }
    }

    /// Reads a payload back from the wire's `circuit` object.
    ///
    /// Structured circuits are validated here (so a malformed gate list
    /// is a [`WireError::BadRequest`] immediately); QASM text is kept
    /// verbatim and parsed at [`realize`](CircuitPayload::realize).
    ///
    /// # Errors
    ///
    /// [`WireError::BadRequest`] naming the offending field or op.
    pub fn from_json(json: &Json) -> Result<Self, WireError> {
        let format = json.str_field("format").map_err(bad_request)?;
        match format {
            "json" => {
                let circuit = Circuit::from_json(json.field("circuit").map_err(bad_request)?)
                    .map_err(bad_request)?;
                Ok(CircuitPayload::Structured(Arc::new(circuit)))
            }
            "qasm" => Ok(CircuitPayload::Qasm(
                json.str_field("source").map_err(bad_request)?.to_string(),
            )),
            other => Err(WireError::BadRequest {
                message: format!("unknown circuit format `{other}` (expected `json` or `qasm`)"),
                line: None,
            }),
        }
    }

    /// Produces the executable circuit, parsing QASM if necessary.
    ///
    /// # Errors
    ///
    /// [`WireError::BadRequest`] carrying the 1-based QASM source line
    /// for parse failures.
    pub fn realize(&self) -> Result<Arc<Circuit>, WireError> {
        match self {
            CircuitPayload::Structured(circuit) => Ok(Arc::clone(circuit)),
            CircuitPayload::Qasm(source) => match from_qasm(source) {
                Ok(circuit) => Ok(Arc::new(circuit)),
                Err(e) => Err(WireError::BadRequest {
                    message: e.message().to_string(),
                    line: Some(e.line()),
                }),
            },
        }
    }
}

fn bad_request(e: impl fmt::Display) -> WireError {
    WireError::BadRequest {
        message: e.to_string(),
        line: None,
    }
}

/// One wire-level evaluation request: everything an
/// [`EvalRequest`] holds, with the circuit still in its travel format.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Caller-chosen circuit label, echoed on the reply.
    pub label: String,
    /// Hardware point (shard) to execute on.
    pub point: String,
    /// Architecture design to run.
    pub design: Design,
    /// Seeded runs to execute (must be at least 1).
    pub runs: usize,
    /// First seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// The circuit, structured or as QASM text.
    pub circuit: CircuitPayload,
}

impl Submission {
    /// Builds a structured-circuit submission with one run at seed 0.
    pub fn structured(
        label: impl Into<String>,
        circuit: Arc<Circuit>,
        point: impl Into<String>,
        design: Design,
    ) -> Self {
        Self {
            label: label.into(),
            point: point.into(),
            design,
            runs: 1,
            base_seed: 0,
            circuit: CircuitPayload::Structured(circuit),
        }
    }

    /// Builds a QASM-text submission with one run at seed 0.
    pub fn qasm(
        label: impl Into<String>,
        source: impl Into<String>,
        point: impl Into<String>,
        design: Design,
    ) -> Self {
        Self {
            label: label.into(),
            point: point.into(),
            design,
            runs: 1,
            base_seed: 0,
            circuit: CircuitPayload::Qasm(source.into()),
        }
    }

    /// Lifts an in-process [`EvalRequest`] onto the wire (structured
    /// form, sharing the circuit `Arc`). This is what lets `serve-bench`
    /// drive the identical request stream through both paths.
    pub fn from_request(request: &EvalRequest) -> Self {
        Self {
            label: request.circuit_label.clone(),
            point: request.point.clone(),
            design: request.design,
            runs: request.runs,
            base_seed: request.base_seed,
            circuit: CircuitPayload::Structured(Arc::clone(&request.circuit)),
        }
    }

    /// Sets the number of seeded runs.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first seed of the request's range.
    #[must_use]
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Converts the submission into the serving layer's request form.
    ///
    /// # Errors
    ///
    /// [`WireError::BadRequest`] if the circuit payload does not parse
    /// (QASM line attached) or `runs` is zero.
    pub fn to_eval_request(&self) -> Result<EvalRequest, WireError> {
        if self.runs == 0 {
            return Err(WireError::BadRequest {
                message: "runs must be at least 1".to_string(),
                line: None,
            });
        }
        let circuit = self.circuit.realize()?;
        Ok(
            EvalRequest::new(self.label.clone(), circuit, self.point.clone(), self.design)
                .runs(self.runs)
                .base_seed(self.base_seed),
        )
    }
}

// ------------------------------------------------------------- frames

/// Builds the client's opening `hello` frame.
pub fn hello_frame(client: &str) -> Json {
    Json::object([
        ("type", Json::from("hello")),
        ("protocol", Json::Int(PROTOCOL_VERSION)),
        ("client", Json::from(client)),
    ])
}

/// Builds a tagged `submit` frame.
pub fn submit_frame(tag: u64, submission: &Submission) -> Json {
    Json::object([
        ("type", Json::from("submit")),
        ("tag", Json::uint(tag)),
        ("label", Json::from(submission.label.as_str())),
        ("point", Json::from(submission.point.as_str())),
        ("design", Json::from(submission.design.name())),
        ("runs", Json::from(submission.runs)),
        ("base_seed", Json::uint(submission.base_seed)),
        ("circuit", submission.circuit.to_json()),
    ])
}

/// Builds a tagged `stats` request frame.
pub fn stats_frame(tag: u64) -> Json {
    Json::object([("type", Json::from("stats")), ("tag", Json::uint(tag))])
}

/// Builds a tagged `metrics` request frame (v3).
pub fn metrics_frame(tag: u64) -> Json {
    Json::object([("type", Json::from("metrics")), ("tag", Json::uint(tag))])
}

/// Builds a tagged `trace` request frame (v3).
pub fn trace_frame(tag: u64) -> Json {
    Json::object([("type", Json::from("trace")), ("tag", Json::uint(tag))])
}

/// Builds the farewell `bye` frame (either direction).
pub fn bye_frame() -> Json {
    Json::object([("type", Json::from("bye"))])
}

/// Builds a server `error` frame; `tag` is echoed when the error is
/// tied to one request, and absent for fatal connection-level errors.
/// `trace_id` (v3) carries the request's trace identity when one was
/// minted before the failure.
pub fn error_frame(tag: Option<u64>, error: &WireError, trace_id: Option<TraceId>) -> Json {
    Json::object([
        ("type", Json::from("error")),
        ("tag", tag.map_or(Json::Null, Json::uint)),
        (
            "trace_id",
            trace_id.map_or(Json::Null, |t| Json::Str(t.to_string())),
        ),
        ("error", error.to_json()),
    ])
}

/// One decoded client → server frame.
#[derive(Debug, Clone)]
pub enum ClientFrame {
    /// The opening handshake.
    Hello {
        /// Protocol version the client speaks.
        protocol: i64,
        /// Self-declared client identity (the quota ledger's key).
        client: String,
    },
    /// A tagged evaluation request.
    Submit {
        /// Client-chosen tag echoed on the reply.
        tag: u64,
        /// The request body.
        submission: Submission,
    },
    /// A tagged request for the live stats snapshot.
    Stats {
        /// Client-chosen tag echoed on the reply.
        tag: u64,
    },
    /// A tagged request for the raw metrics registry snapshot (v3).
    Metrics {
        /// Client-chosen tag echoed on the reply.
        tag: u64,
    },
    /// A tagged request for the daemon's recent span/event capture (v3).
    Trace {
        /// Client-chosen tag echoed on the reply.
        tag: u64,
    },
    /// Orderly goodbye: the server drains in-flight replies, answers
    /// `bye`, and closes.
    Bye,
}

/// Decodes one client → server frame.
///
/// # Errors
///
/// [`WireError::Protocol`] for an unknown or untagged frame shape;
/// [`WireError::BadRequest`] for a well-shaped `submit` with bad
/// contents. Either way the caller can still recover the frame's `tag`
/// field (if any) to address its error reply.
pub fn parse_client_frame(json: &Json) -> Result<ClientFrame, WireError> {
    let frame_type = json.str_field("type").map_err(protocol_err)?;
    match frame_type {
        "hello" => Ok(ClientFrame::Hello {
            protocol: json.i64_field("protocol").map_err(protocol_err)?,
            client: json.str_field("client").map_err(protocol_err)?.to_string(),
        }),
        "submit" => {
            let tag = json.u64_field("tag").map_err(protocol_err)?;
            let design_name = json.str_field("design").map_err(bad_request)?;
            let design = design_name.parse::<Design>().map_err(bad_request)?;
            let submission = Submission {
                label: json.str_field("label").map_err(bad_request)?.to_string(),
                point: json.str_field("point").map_err(bad_request)?.to_string(),
                design,
                runs: json.usize_field("runs").map_err(bad_request)?,
                base_seed: json.u64_field("base_seed").map_err(bad_request)?,
                circuit: CircuitPayload::from_json(json.field("circuit").map_err(bad_request)?)?,
            };
            Ok(ClientFrame::Submit { tag, submission })
        }
        "stats" => Ok(ClientFrame::Stats {
            tag: json.u64_field("tag").map_err(protocol_err)?,
        }),
        "metrics" => Ok(ClientFrame::Metrics {
            tag: json.u64_field("tag").map_err(protocol_err)?,
        }),
        "trace" => Ok(ClientFrame::Trace {
            tag: json.u64_field("tag").map_err(protocol_err)?,
        }),
        "bye" => Ok(ClientFrame::Bye),
        other => Err(WireError::Protocol {
            message: format!("unknown frame type `{other}`"),
        }),
    }
}

fn protocol_err(e: impl fmt::Display) -> WireError {
    WireError::Protocol {
        message: e.to_string(),
    }
}

// ------------------------------------------------- server-side frames

/// The server's `welcome` reply: what this daemon serves and the quota
/// terms the client is admitted under.
#[derive(Debug, Clone)]
pub struct Welcome {
    /// Protocol version the server speaks.
    pub protocol: i64,
    /// Server identity string ([`SERVER_NAME`]).
    pub server: String,
    /// Hardware points with a running shard, in registration order.
    pub points: Vec<String>,
    /// Accepted design names ([`Design::ALL`] spellings).
    pub designs: Vec<String>,
    /// Per-client in-flight cap, if one is configured.
    pub max_in_flight: Option<usize>,
    /// Per-client sustained submissions/second, if rate-limited.
    pub rate_per_sec: Option<f64>,
    /// The daemon's full serving configuration — queue/cache/batch
    /// bounds, fusion, autoscale policy, quota terms — so clients can
    /// introspect the limits they are admitted under.
    pub config: ServeConfig,
}

impl Welcome {
    /// Serializes the frame.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("type", Json::from("welcome")),
            ("protocol", Json::Int(self.protocol)),
            ("server", Json::from(self.server.as_str())),
            (
                "points",
                Json::Array(self.points.iter().map(|p| Json::from(p.as_str())).collect()),
            ),
            (
                "designs",
                Json::Array(
                    self.designs
                        .iter()
                        .map(|d| Json::from(d.as_str()))
                        .collect(),
                ),
            ),
            (
                "max_in_flight",
                self.max_in_flight.map_or(Json::Null, Json::from),
            ),
            (
                "rate_per_sec",
                self.rate_per_sec.map_or(Json::Null, Json::float),
            ),
            ("config", self.config.to_json()),
        ])
    }

    /// Reads a `welcome` frame back.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_list = |key: &str| -> Result<Vec<String>, JsonError> {
            json.array_field(key)?
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        JsonError::schema(format!("field `{key}`: expected strings"))
                    })
                })
                .collect()
        };
        Ok(Self {
            protocol: json.i64_field("protocol")?,
            server: json.str_field("server")?.to_string(),
            points: str_list("points")?,
            designs: str_list("designs")?,
            max_in_flight: match json.field("max_in_flight")? {
                Json::Null => None,
                value => Some(
                    value
                        .as_u64()
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(|| {
                            JsonError::schema("field `max_in_flight`: expected a count or null")
                        })?,
                ),
            },
            rate_per_sec: match json.field("rate_per_sec")? {
                Json::Null => None,
                value => Some(value.as_f64().ok_or_else(|| {
                    JsonError::schema("field `rate_per_sec`: expected a number or null")
                })?),
            },
            config: ServeConfig::from_json(json.field("config")?)?,
        })
    }
}

/// The daemon's own counters, reported alongside the serving layer's
/// [`ServeStats`] in the `stats` reply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonStats {
    /// Connections accepted since the daemon started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Submissions refused by a per-client quota.
    pub quota_rejected: u64,
    /// Submissions refused as malformed (`bad_request`).
    pub bad_requests: u64,
    /// Frames that broke the protocol (connection then closed).
    pub protocol_errors: u64,
}

impl DaemonStats {
    /// Serializes the counters.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "connections_accepted",
                Json::uint(self.connections_accepted),
            ),
            ("connections_active", Json::uint(self.connections_active)),
            ("quota_rejected", Json::uint(self.quota_rejected)),
            ("bad_requests", Json::uint(self.bad_requests)),
            ("protocol_errors", Json::uint(self.protocol_errors)),
        ])
    }

    /// Reads the counters back.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            connections_accepted: json.u64_field("connections_accepted")?,
            connections_active: json.u64_field("connections_active")?,
            quota_rejected: json.u64_field("quota_rejected")?,
            bad_requests: json.u64_field("bad_requests")?,
            protocol_errors: json.u64_field("protocol_errors")?,
        })
    }
}

/// The successful payload of a wire reply: the response fields of an
/// [`EvalResponse`](dqc_serve::EvalResponse) that survive serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutput {
    /// The request's circuit label, echoed back.
    pub label: String,
    /// The hardware point that served the request.
    pub point: String,
    /// Whether compilation came out of the shard's warm cache.
    pub cache_hit: bool,
    /// Server-side wall-clock latency in milliseconds (submission to
    /// completion, queueing included).
    pub latency_ms: f64,
    /// The trace identity the daemon minted at admission (v3), usable
    /// to correlate this request with a `trace` capture. Absent from
    /// pre-v3 peers.
    pub trace_id: Option<TraceId>,
    /// Per-seed reports, in seed order.
    pub reports: Vec<ExecutionReport>,
}

/// One tagged reply to a `submit`: the output, or the typed refusal.
#[derive(Debug, Clone)]
pub struct WireReply {
    /// The client's tag, echoed back.
    pub tag: u64,
    /// The evaluation result or the error that stopped it.
    pub outcome: Result<WireOutput, WireError>,
}

/// Builds a tagged `result` frame from a completed evaluation.
pub fn result_frame(tag: u64, output: &WireOutput) -> Json {
    Json::object([
        ("type", Json::from("result")),
        ("tag", Json::uint(tag)),
        ("label", Json::from(output.label.as_str())),
        ("point", Json::from(output.point.as_str())),
        ("cache_hit", Json::from(output.cache_hit)),
        ("latency_ms", Json::float(output.latency_ms)),
        (
            "trace_id",
            output
                .trace_id
                .map_or(Json::Null, |t| Json::Str(t.to_string())),
        ),
        (
            "reports",
            Json::Array(
                output
                    .reports
                    .iter()
                    .map(ExecutionReport::to_json)
                    .collect(),
            ),
        ),
    ])
}

/// Builds a tagged `stats` reply frame.
pub fn stats_reply_frame(tag: u64, serve: &ServeStats, daemon: &DaemonStats) -> Json {
    Json::object([
        ("type", Json::from("stats")),
        ("tag", Json::uint(tag)),
        ("serve", serve.to_json()),
        ("daemon", daemon.to_json()),
    ])
}

/// Builds a tagged `metrics` reply frame (v3): the raw registry
/// snapshot behind the stats roll-up.
pub fn metrics_reply_frame(tag: u64, metrics: &MetricsSnapshot) -> Json {
    Json::object([
        ("type", Json::from("metrics")),
        ("tag", Json::uint(tag)),
        ("metrics", metrics.to_json()),
    ])
}

/// Builds a tagged `trace` reply frame (v3): the daemon's recent
/// span/event ring as a schema-versioned capture document.
pub fn trace_reply_frame(tag: u64, capture: &Capture) -> Json {
    Json::object([
        ("type", Json::from("trace")),
        ("tag", Json::uint(tag)),
        ("capture", capture.to_json()),
    ])
}

/// One decoded server → client frame.
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// The handshake acceptance. Boxed for the same reason as `Trace`:
    /// the full config echo dominates the enum's footprint.
    Welcome(Box<Welcome>),
    /// A tagged evaluation result.
    Result {
        /// The client's tag, echoed back.
        tag: u64,
        /// The evaluation output.
        output: WireOutput,
    },
    /// A typed error, tagged when tied to one request.
    Error {
        /// The offending request's tag, or `None` for connection-fatal
        /// errors.
        tag: Option<u64>,
        /// The request's trace identity, when one was minted (v3).
        trace_id: Option<TraceId>,
        /// The error itself.
        error: WireError,
    },
    /// A tagged stats snapshot.
    Stats {
        /// The client's tag, echoed back.
        tag: u64,
        /// The serving layer's snapshot.
        serve: ServeStats,
        /// The daemon's own counters.
        daemon: DaemonStats,
    },
    /// A tagged raw metrics snapshot (v3).
    Metrics {
        /// The client's tag, echoed back.
        tag: u64,
        /// The registry snapshot, histograms included.
        metrics: MetricsSnapshot,
    },
    /// A tagged span/event capture (v3). Boxed: a capture dwarfs every
    /// other variant, and frames travel through `Result<_, ServerFrame>`
    /// plumbing on the client.
    Trace {
        /// The client's tag, echoed back.
        tag: u64,
        /// The daemon's recent span/event ring.
        capture: Box<Capture>,
    },
    /// The server's goodbye; the connection closes after this.
    Bye,
}

/// Decodes one server → client frame.
///
/// # Errors
///
/// [`JsonError::Schema`] when the frame does not match the vocabulary —
/// on the client this means the peer is not a `dqc-served` daemon.
pub fn parse_server_frame(json: &Json) -> Result<ServerFrame, JsonError> {
    let frame_type = json.str_field("type")?;
    Ok(match frame_type {
        "welcome" => ServerFrame::Welcome(Box::new(Welcome::from_json(json)?)),
        "result" => ServerFrame::Result {
            tag: json.u64_field("tag")?,
            output: WireOutput {
                label: json.str_field("label")?.to_string(),
                point: json.str_field("point")?.to_string(),
                cache_hit: json
                    .field("cache_hit")?
                    .as_bool()
                    .ok_or_else(|| JsonError::schema("field `cache_hit`: expected a bool"))?,
                latency_ms: json.f64_field("latency_ms")?,
                trace_id: optional_trace_id(json)?,
                reports: json
                    .array_field("reports")?
                    .iter()
                    .map(ExecutionReport::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
        },
        "error" => ServerFrame::Error {
            tag: match json.field("tag")? {
                Json::Null => None,
                value => Some(
                    value
                        .as_u64()
                        .ok_or_else(|| JsonError::schema("field `tag`: expected a tag or null"))?,
                ),
            },
            trace_id: optional_trace_id(json)?,
            error: WireError::from_json(json.field("error")?)?,
        },
        "stats" => ServerFrame::Stats {
            tag: json.u64_field("tag")?,
            serve: ServeStats::from_json(json.field("serve")?)?,
            daemon: DaemonStats::from_json(json.field("daemon")?)?,
        },
        "metrics" => ServerFrame::Metrics {
            tag: json.u64_field("tag")?,
            metrics: MetricsSnapshot::from_json(json.field("metrics")?)?,
        },
        "trace" => ServerFrame::Trace {
            tag: json.u64_field("tag")?,
            capture: Box::new(Capture::from_json(json.field("capture")?)?),
        },
        "bye" => ServerFrame::Bye,
        other => return Err(JsonError::schema(format!("unknown frame type `{other}`"))),
    })
}

/// Reads the optional v3 `trace_id` field: absent or `null` means none
/// (a pre-v3 peer), a present string must parse as a trace identity.
fn optional_trace_id(json: &Json) -> Result<Option<TraceId>, JsonError> {
    match json.get("trace_id") {
        None | Some(Json::Null) => Ok(None),
        Some(value) => {
            let text = value
                .as_str()
                .ok_or_else(|| JsonError::schema("field `trace_id`: expected a string or null"))?;
            TraceId::parse(text)
                .map(Some)
                .ok_or_else(|| JsonError::schema("field `trace_id`: expected 16 hex digits"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Arc<Circuit> {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rzz(1, 2, 0.37).rz(2, -1.25);
        Arc::new(c)
    }

    #[test]
    fn submit_frames_round_trip_structured_circuits() {
        let circuit = sample_circuit();
        let submission =
            Submission::structured("probe", Arc::clone(&circuit), "paper", Design::AdaptBuf)
                .runs(4)
                .base_seed(99);
        let frame = submit_frame(7, &submission);
        let reparsed = Json::parse(&frame.to_compact_string()).unwrap();
        match parse_client_frame(&reparsed).unwrap() {
            ClientFrame::Submit { tag, submission } => {
                assert_eq!(tag, 7);
                assert_eq!(submission.label, "probe");
                assert_eq!(submission.point, "paper");
                assert_eq!(submission.design, Design::AdaptBuf);
                assert_eq!(submission.runs, 4);
                assert_eq!(submission.base_seed, 99);
                let realized = submission.circuit.realize().unwrap();
                assert_eq!(realized.fingerprint(), circuit.fingerprint());
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn qasm_submissions_realize_to_the_same_fingerprint() {
        let circuit = sample_circuit();
        let submission = Submission::qasm(
            "probe",
            dqc_circuit::to_qasm(&circuit),
            "paper",
            Design::Original,
        );
        let frame = submit_frame(1, &submission);
        match parse_client_frame(&frame).unwrap() {
            ClientFrame::Submit { submission, .. } => {
                let realized = submission.circuit.realize().unwrap();
                assert_eq!(realized.fingerprint(), circuit.fingerprint());
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn broken_qasm_surfaces_its_line_through_realize() {
        let submission = Submission::qasm(
            "broken",
            "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
            "paper",
            Design::Original,
        );
        let err = submission.to_eval_request().unwrap_err();
        match &err {
            WireError::BadRequest { line, .. } => assert_eq!(*line, Some(3)),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // And the error survives the wire.
        let back = WireError::from_json(&err.to_json()).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn zero_runs_are_refused_before_reaching_the_server() {
        let submission =
            Submission::structured("z", sample_circuit(), "paper", Design::Original).runs(0);
        let err = submission.to_eval_request().unwrap_err();
        assert!(matches!(err, WireError::BadRequest { .. }), "{err}");
    }

    #[test]
    fn every_error_kind_round_trips() {
        let errors = [
            WireError::Overloaded {
                point: "paper".into(),
                capacity: 64,
            },
            WireError::QuotaExceeded {
                client: "greedy".into(),
                scope: QuotaScope::InFlight,
                limit: 2.0,
            },
            WireError::QuotaExceeded {
                client: "greedy".into(),
                scope: QuotaScope::Rate,
                limit: 0.5,
            },
            WireError::BadRequest {
                message: "unsupported gate frobnicate".into(),
                line: Some(3),
            },
            WireError::BadRequest {
                message: "runs must be at least 1".into(),
                line: None,
            },
            WireError::UnknownPoint {
                point: "paper128".into(),
            },
            WireError::Rejected {
                point: "paper".into(),
                diagnostics: vec![Diagnostic::new(
                    "DQC-E001",
                    dqc_types::Site::Circuit("wide".to_string()),
                    "40 qubits exceed 32",
                    "shrink the circuit",
                )],
            },
            WireError::Engine {
                message: "boom".into(),
            },
            WireError::Protocol {
                message: "unknown frame type `nope`".into(),
            },
        ];
        for err in errors {
            let json = Json::parse(&err.to_json().to_compact_string()).unwrap();
            assert_eq!(WireError::from_json(&json).unwrap(), err);
            assert!(!err.to_string().is_empty());
        }
        let retryable = WireError::Overloaded {
            point: "p".into(),
            capacity: 1,
        };
        assert!(retryable.is_backpressure());
        assert!(!bad_request("x").is_backpressure());
    }

    #[test]
    fn hello_and_welcome_round_trip() {
        let hello = hello_frame("bench-0");
        match parse_client_frame(&hello).unwrap() {
            ClientFrame::Hello { protocol, client } => {
                assert_eq!(protocol, PROTOCOL_VERSION);
                assert_eq!(client, "bench-0");
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        let welcome = Welcome {
            protocol: PROTOCOL_VERSION,
            server: SERVER_NAME.to_string(),
            points: vec!["paper".into(), "paper64".into()],
            designs: Design::ALL.iter().map(|d| d.name().to_string()).collect(),
            max_in_flight: Some(8),
            rate_per_sec: None,
            config: ServeConfig {
                workers_per_shard: 3,
                fusion: false,
                ..ServeConfig::default()
            },
        };
        let reparsed = Json::parse(&welcome.to_json().to_compact_string()).unwrap();
        match parse_server_frame(&reparsed).unwrap() {
            ServerFrame::Welcome(back) => {
                assert_eq!(back.protocol, welcome.protocol);
                assert_eq!(back.points, welcome.points);
                assert_eq!(back.designs, welcome.designs);
                assert_eq!(back.max_in_flight, Some(8));
                assert_eq!(back.rate_per_sec, None);
                assert_eq!(back.config, welcome.config);
            }
            other => panic!("expected Welcome, got {other:?}"),
        }
    }

    #[test]
    fn unknown_frame_types_are_protocol_errors() {
        let frame = Json::object([("type", Json::from("teleport"))]);
        let err = parse_client_frame(&frame).unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
        assert!(parse_server_frame(&frame).is_err());
    }

    #[test]
    fn daemon_stats_round_trip() {
        let stats = DaemonStats {
            connections_accepted: 5,
            connections_active: 2,
            quota_rejected: 3,
            bad_requests: 1,
            protocol_errors: 0,
        };
        let json = Json::parse(&stats.to_json().to_compact_string()).unwrap();
        assert_eq!(DaemonStats::from_json(&json).unwrap(), stats);
    }

    #[test]
    fn metrics_and_trace_requests_parse() {
        match parse_client_frame(&metrics_frame(4)).unwrap() {
            ClientFrame::Metrics { tag } => assert_eq!(tag, 4),
            other => panic!("expected Metrics, got {other:?}"),
        }
        match parse_client_frame(&trace_frame(9)).unwrap() {
            ClientFrame::Trace { tag } => assert_eq!(tag, 9),
            other => panic!("expected Trace, got {other:?}"),
        }
    }

    #[test]
    fn metrics_reply_round_trips_the_snapshot() {
        let registry = dqc_obs::Registry::new();
        registry.counter("served.connections_accepted").add(3);
        registry.gauge("serve.workers{point=paper}").set(2);
        registry
            .histogram("serve.service_us{point=paper}", &[100, 1000])
            .record(250);
        let snapshot = registry.snapshot();
        let frame = metrics_reply_frame(11, &snapshot);
        let reparsed = Json::parse(&frame.to_compact_string()).unwrap();
        match parse_server_frame(&reparsed).unwrap() {
            ServerFrame::Metrics { tag, metrics } => {
                assert_eq!(tag, 11);
                assert_eq!(metrics, snapshot);
                assert_eq!(metrics.counter("served.connections_accepted"), Some(3));
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn trace_reply_round_trips_the_capture() {
        use dqc_obs::Recorder as _;
        let ring = dqc_obs::RingRecorder::new(8);
        ring.record_span(dqc_obs::SpanRecord {
            trace: TraceId(0x1234),
            id: dqc_obs::SpanId(1),
            parent: None,
            name: "serve.request".to_string(),
            start_us: 10,
            end_us: 90,
            attrs: vec![("point".to_string(), dqc_obs::AttrValue::Str("paper".into()))],
        });
        let capture =
            Capture::from_ring(SERVER_NAME, "monotonic", &ring, MetricsSnapshot::default());
        let frame = trace_reply_frame(2, &capture);
        let reparsed = Json::parse(&frame.to_compact_string()).unwrap();
        match parse_server_frame(&reparsed).unwrap() {
            ServerFrame::Trace { tag, capture: back } => {
                assert_eq!(tag, 2);
                assert_eq!(*back, capture);
                assert_eq!(back.traces(), vec![TraceId(0x1234)]);
            }
            other => panic!("expected Trace, got {other:?}"),
        }
    }

    #[test]
    fn results_and_errors_echo_their_trace_id() {
        let trace = TraceId(0xabcdef);
        let output = WireOutput {
            label: "bell".into(),
            point: "paper".into(),
            cache_hit: true,
            latency_ms: 1.5,
            trace_id: Some(trace),
            reports: Vec::new(),
        };
        let reparsed = Json::parse(&result_frame(3, &output).to_compact_string()).unwrap();
        match parse_server_frame(&reparsed).unwrap() {
            ServerFrame::Result { tag, output } => {
                assert_eq!(tag, 3);
                assert_eq!(output.trace_id, Some(trace));
            }
            other => panic!("expected Result, got {other:?}"),
        }

        let err = bad_request("nope");
        let with =
            Json::parse(&error_frame(Some(8), &err, Some(trace)).to_compact_string()).unwrap();
        match parse_server_frame(&with).unwrap() {
            ServerFrame::Error { tag, trace_id, .. } => {
                assert_eq!(tag, Some(8));
                assert_eq!(trace_id, Some(trace));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // Absent and null both mean "no trace" (pre-v3 peers).
        let without = Json::parse(&error_frame(None, &err, None).to_compact_string()).unwrap();
        match parse_server_frame(&without).unwrap() {
            ServerFrame::Error { trace_id, .. } => assert_eq!(trace_id, None),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_trace_ids_are_schema_errors() {
        let mut frame = error_frame(Some(1), &bad_request("x"), None);
        if let Json::Object(members) = &mut frame {
            for (key, value) in members.iter_mut() {
                if key == "trace_id" {
                    *value = Json::from("not-hex");
                }
            }
        }
        assert!(parse_server_frame(&frame).is_err());
    }
}
