//! `dqc-served` — the network front door of the serving stack.
//!
//! The serving layer (`dqc-serve`) is a library: shards, worker pools,
//! warm compile caches, bounded admission — all in-process. This crate
//! puts a wire on it, turning the co-design evaluation engine into a
//! long-lived daemon that remote tenants share:
//!
//! * **Transport** ([`frame`]) — TCP, 4-byte big-endian length prefix,
//!   UTF-8 JSON payloads over the workspace's dependency-free
//!   `dqc-types::json`. No async runtime, no wire-format crates: plain
//!   `std` sockets and threads, like the layer underneath.
//! * **Vocabulary** ([`protocol`]) — a versioned handshake
//!   (`hello`/`welcome`), tagged pipelined submissions, typed errors,
//!   and a live `stats` command. Circuits travel either as structured
//!   JSON or as OpenQASM 2.0 text; both decode to fingerprint-identical
//!   [`Circuit`](dqc_circuit::Circuit)s, so wire traffic shares the
//!   in-process compile caches.
//! * **Multi-tenancy** ([`quota`]) — per-client in-flight caps and
//!   token-bucket rate limits keyed by the `hello` identity, layered on
//!   the serve layer's global `overloaded` backpressure so one greedy
//!   tenant cannot starve the rest.
//! * **Daemon** ([`daemon`]) — [`ServedBuilder`] → [`Served`]: accept
//!   thread, response router, reader/writer pair per connection, orderly
//!   [`shutdown`](Served::shutdown).
//! * **Client** ([`client`]) — [`ServedClient`], the blocking client the
//!   serve benchmark's wire mode and the CI smoke test drive.
//!
//! Determinism survives the wire: a request's outcome depends only on
//! the request (circuit, point, design, runs, base seed), so replies are
//! byte-identical to direct in-process evaluation — the workspace's
//! integration tests pin exactly that, at multiple concurrent
//! connections, for both circuit formats.
//!
//! # Examples
//!
//! Daemon up, client round trip, daemon down:
//!
//! ```
//! use dqc_circuit::Circuit;
//! use dqc_core::{Design, SystemConfig};
//! use dqc_served::{ServedBuilder, ServedClient, Submission};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let daemon = ServedBuilder::new()
//!     .hardware_point("paper", SystemConfig::paper_two_node_32())
//!     .workers_per_shard(1)
//!     .bind("127.0.0.1:0")?; // port 0: the OS picks
//!
//! let mut client = ServedClient::connect(daemon.local_addr(), "doc-example")?;
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let tag = client.submit(&Submission::structured(
//!     "bell",
//!     Arc::new(bell),
//!     "paper",
//!     Design::AdaptBuf,
//! ))?;
//! let reply = client.recv_reply()?;
//! assert_eq!(reply.tag, tag);
//! assert_eq!(reply.outcome.unwrap().reports.len(), 1);
//! client.bye()?;
//!
//! let report = daemon.shutdown();
//! assert_eq!(report.serve.served, 1);
//! assert_eq!(report.daemon.connections_accepted, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod protocol;
pub mod quota;

pub use client::{ClientError, ServedClient};
pub use daemon::{Served, ServedBuilder, ServedError, ShutdownReport};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use protocol::{
    CircuitPayload, DaemonStats, QuotaScope, Submission, Welcome, WireError, WireOutput, WireReply,
    PROTOCOL_VERSION, SERVER_NAME,
};
pub use quota::{QuotaConfig, RateLimit};
