//! The daemon itself: a TCP front door on the serving layer.
//!
//! [`ServedBuilder`] wraps [`ServeBuilder`] — same shard registration,
//! same worker/queue/cache knobs — and adds the network surface (a bound
//! listener) and the multi-tenant [`QuotaConfig`]. [`bind`] spawns:
//!
//! * one **accept thread** handing sockets to per-connection threads,
//! * one **router thread** owning the serve layer's result channel and
//!   steering each [`EvalResponse`] back to the connection (and tag)
//!   that submitted it,
//! * per connection, a **reader thread** (handshake, frame dispatch,
//!   quota admission, submission) and a **writer thread** (serializing
//!   outbound frames, so a slow client never blocks the router).
//!
//! Everything is plain `std` threads and channels — no async runtime —
//! matching the serving layer underneath.
//!
//! Ordering: replies to one connection arrive in *completion* order,
//! exactly like the in-process result channel; clients correlate by tag.
//! Admission errors (`quota_exceeded`, `overloaded`, `bad_request`) are
//! answered inline from the reader thread, so a refused request never
//! consumes shard-queue space.
//!
//! [`bind`]: ServedBuilder::bind

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{
    bye_frame, error_frame, metrics_reply_frame, parse_client_frame, result_frame,
    stats_reply_frame, trace_reply_frame, ClientFrame, DaemonStats, Submission, Welcome, WireError,
    WireOutput, PROTOCOL_VERSION, SERVER_NAME,
};
use crate::quota::{AdmissionLedger, QuotaConfig};
use dqc_core::{Design, SystemConfig};
use dqc_obs::{Capture, Counter, Registry, RingRecorder, TraceId};
use dqc_serve::{
    AutoscalePolicy, EvalResponse, ServeBuilder, ServeConfig, ServeError, ServeStats, Server,
    WorkerPlacement,
};
use dqc_types::{Json, JsonError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything that can stop a daemon from coming up.
#[derive(Debug)]
pub enum ServedError {
    /// Binding the listener (or cloning a socket) failed.
    Io(io::Error),
    /// The serving layer refused to spawn (no points, duplicate label).
    Serve(ServeError),
}

impl fmt::Display for ServedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServedError::Io(e) => write!(f, "daemon i/o failed: {e}"),
            ServedError::Serve(e) => write!(f, "serving layer failed: {e}"),
        }
    }
}

impl Error for ServedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServedError::Io(e) => Some(e),
            ServedError::Serve(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServedError {
    fn from(e: io::Error) -> Self {
        ServedError::Io(e)
    }
}

impl From<ServeError> for ServedError {
    fn from(e: ServeError) -> Self {
        ServedError::Serve(e)
    }
}

/// Configures and binds a [`Served`] daemon.
///
/// # Examples
///
/// ```
/// use dqc_core::SystemConfig;
/// use dqc_served::ServedBuilder;
///
/// # fn main() -> Result<(), dqc_served::ServedError> {
/// let daemon = ServedBuilder::new()
///     .hardware_point("paper", SystemConfig::paper_two_node_32())
///     .workers_per_shard(2)
///     .max_in_flight(8)
///     .bind("127.0.0.1:0")?;
/// println!("listening on {}", daemon.local_addr());
/// let report = daemon.shutdown();
/// assert_eq!(report.serve.served, 0);
/// assert_eq!(report.daemon.connections_accepted, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServedBuilder {
    serve: ServeBuilder,
    trace_ring: Option<Arc<RingRecorder>>,
}

impl Default for ServedBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServedBuilder {
    /// Starts a builder with the serving layer's defaults and no quotas.
    /// Every knob — including the daemon-enforced quotas — lives in the
    /// wrapped [`ServeBuilder`]'s [`ServeConfig`]; the setters here are
    /// forwarding shims.
    pub fn new() -> Self {
        Self {
            serve: ServeBuilder::new(),
            trace_ring: None,
        }
    }

    /// Replaces the whole serving configuration in one move — the
    /// `--config FILE.json` path.
    #[must_use]
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.serve = self.serve.config(config);
        self
    }

    /// The configuration as accumulated so far.
    pub fn config_ref(&self) -> &ServeConfig {
        self.serve.config_ref()
    }

    /// Registers a named hardware point; submissions target it by label.
    #[must_use]
    pub fn hardware_point(mut self, label: impl Into<String>, config: SystemConfig) -> Self {
        self.serve = self.serve.hardware_point(label, config);
        self
    }

    /// Sets the worker threads per shard (see
    /// [`ServeBuilder::workers_per_shard`]; `0` is the accept-only
    /// diagnostic mode admission tests rely on).
    #[must_use]
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.serve = self.serve.workers_per_shard(workers);
        self
    }

    /// Sets each shard's queue capacity (the `overloaded` bound).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.serve = self.serve.queue_capacity(capacity);
        self
    }

    /// Sets each shard's warm-compilation cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.serve = self.serve.cache_capacity(capacity);
        self
    }

    /// Sets the worker batch size.
    #[must_use]
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.serve = self.serve.batch_max(batch_max);
        self
    }

    /// Enables or disables cross-request replay fusion (see
    /// [`ServeBuilder::fusion`]; on by default).
    #[must_use]
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.serve = self.serve.fusion(fusion);
        self
    }

    /// Enables queue-pressure autoscaling (see [`ServeBuilder::autoscale`]).
    #[must_use]
    pub fn autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.serve = self.serve.autoscale(policy);
        self
    }

    /// Caps the total active workers across all shards under autoscaling
    /// (see [`ServeBuilder::worker_budget`]).
    #[must_use]
    pub fn worker_budget(mut self, budget: usize) -> Self {
        self.serve = self.serve.worker_budget(budget);
        self
    }

    /// Caps each client identity at `max` simultaneously in-flight
    /// requests (`quota_exceeded` / `in_flight` beyond it).
    #[must_use]
    pub fn max_in_flight(mut self, max: usize) -> Self {
        self.serve = self.serve.max_in_flight(max);
        self
    }

    /// Rate-limits each client identity to `per_sec` sustained
    /// submissions per second with an instantaneous burst of `burst`
    /// (`quota_exceeded` / `rate` beyond it).
    #[must_use]
    pub fn rate_limit(mut self, per_sec: f64, burst: f64) -> Self {
        self.serve = self.serve.rate_limit(per_sec, burst);
        self
    }

    /// The quota terms configured so far.
    pub fn quota(&self) -> QuotaConfig {
        self.serve.config_ref().quota
    }

    /// Attaches the span ring the daemon drains to answer `trace`
    /// frames. The daemon does **not** install it: the caller decides
    /// when recording is on by pairing the same ring with
    /// [`dqc_obs::install`]. Without a ring, `trace` replies carry an
    /// empty capture (metrics only).
    #[must_use]
    pub fn trace_ring(mut self, ring: Arc<RingRecorder>) -> Self {
        self.trace_ring = Some(ring);
        self
    }

    /// Binds the listener, spawns the serving layer and the daemon's
    /// threads, and returns the running daemon.
    ///
    /// Bind to port `0` to let the OS pick a free port;
    /// [`Served::local_addr`] reports the resolved address.
    ///
    /// # Errors
    ///
    /// [`ServedError::Io`] if the listener cannot bind,
    /// [`ServedError::Serve`] if the shard registration is invalid.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<Served, ServedError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let quota = self.serve.config_ref().quota;
        let (server, responses) = self.serve.spawn()?;
        let server = Arc::new(server);
        // The daemon's counters live in the serving layer's registry, so
        // the `metrics` wire frame is one snapshot covering both layers.
        let counters = Counters::register(&server.registry());
        let shared = Arc::new(Shared {
            ledger: AdmissionLedger::new(quota),
            dispatcher: Dispatcher::default(),
            counters,
            trace_ring: self.trace_ring,
            closing: AtomicBool::new(false),
            epoch: Instant::now(),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });

        let router = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || router_loop(&responses, &shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let server = Arc::clone(&server);
            std::thread::spawn(move || accept_loop(&listener, &server, &shared))
        };

        Ok(Served {
            local_addr,
            server,
            shared,
            accept: Some(accept),
            router: Some(router),
        })
    }
}

/// A running daemon. Keep the handle; [`shutdown`](Served::shutdown) is
/// the only orderly way down (dropping the handle without it leaves the
/// accept thread parked until process exit).
#[derive(Debug)]
pub struct Served {
    local_addr: SocketAddr,
    server: Arc<Server>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
}

impl Served {
    /// Starts a [`ServedBuilder`].
    pub fn builder() -> ServedBuilder {
        ServedBuilder::new()
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving layer's live stats snapshot.
    pub fn serve_stats(&self) -> ServeStats {
        self.server.stats()
    }

    /// The daemon's own live counters.
    pub fn daemon_stats(&self) -> DaemonStats {
        self.shared.counters.snapshot()
    }

    /// One snapshot of the shared metrics registry: the serving layer's
    /// per-shard `serve.*` metrics plus the daemon's `served.*`
    /// connection counters — exactly what the `metrics` wire frame
    /// returns.
    pub fn metrics(&self) -> dqc_obs::MetricsSnapshot {
        self.server.metrics()
    }

    /// Gracefully shuts the daemon down: stops accepting, severs open
    /// connections, drains the serving layer, and returns the final
    /// [`ShutdownReport`].
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.closing.store(true, Ordering::SeqCst);
        // Wake the accept thread; the drop of this probe connection is
        // what it sees.
        drop(TcpStream::connect(self.local_addr));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Sever every connection; readers see EOF and exit.
        for (_, stream) in self
            .shared
            .conns
            .lock()
            .expect("connection registry poisoned")
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let conn_threads: Vec<_> = self
            .shared
            .conn_threads
            .lock()
            .expect("connection threads poisoned")
            .drain(..)
            .collect();
        for thread in conn_threads {
            let _ = thread.join();
        }
        // Dangling routes (requests whose reply never arrived) drop
        // their writer handles so the writer threads can exit too.
        self.shared.dispatcher.clear(&self.shared.ledger);
        let server = Arc::try_unwrap(self.server)
            .expect("accept and connection threads released their server handles");
        let report = server.shutdown();
        // Workers are joined now, so the result channel is disconnected
        // and the router falls out of recv().
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        ShutdownReport {
            serve: report.serve,
            daemon: self.shared.counters.snapshot(),
            placement: report.placement,
        }
    }
}

/// Everything [`Served::shutdown`] hands back: the serving layer's final
/// stats, the daemon's own counters, and where the autoscaler left each
/// shard's workers. The serving layer's in-process analogue is
/// [`dqc_serve::ShutdownReport`]; this one adds the daemon column.
#[derive(Debug, Clone, PartialEq)]
pub struct ShutdownReport {
    /// Final serving-layer counters.
    pub serve: ServeStats,
    /// Final daemon counters.
    pub daemon: DaemonStats,
    /// Final worker placement, in shard registration order.
    pub placement: Vec<WorkerPlacement>,
}

impl ShutdownReport {
    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("serve", self.serve.to_json()),
            ("daemon", self.daemon.to_json()),
            (
                "placement",
                Json::Array(
                    self.placement
                        .iter()
                        .map(WorkerPlacement::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a report produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on any missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let placement = json
            .array_field("placement")?
            .iter()
            .map(WorkerPlacement::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            serve: ServeStats::from_json(json.field("serve")?)?,
            daemon: DaemonStats::from_json(json.field("daemon")?)?,
            placement,
        })
    }
}

/// State shared by the accept, router, and reader threads (the writer
/// threads deliberately hold none of it, so they can outlive shutdown
/// briefly without pinning the daemon).
///
/// The connection registry (`conns`) exists so shutdown can sever live
/// sockets; each entry is a dup'd descriptor, so a connection *must*
/// remove its entry when it ends — otherwise the kernel keeps the
/// socket open (no FIN for the peer) and the daemon leaks a descriptor
/// per connection for its whole lifetime.
#[derive(Debug)]
struct Shared {
    ledger: AdmissionLedger,
    dispatcher: Dispatcher,
    counters: Counters,
    trace_ring: Option<Arc<RingRecorder>>,
    closing: AtomicBool,
    epoch: Instant,
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// The daemon's counters, as handles into the serving layer's metrics
/// registry (`served.*` names). `connections_active` is derived from the
/// two monotone counters so every registered metric stays monotone —
/// the stats-frame regression tests rely on that.
#[derive(Debug)]
struct Counters {
    connections_accepted: Arc<Counter>,
    connections_closed: Arc<Counter>,
    quota_rejected: Arc<Counter>,
    bad_requests: Arc<Counter>,
    protocol_errors: Arc<Counter>,
}

impl Counters {
    fn register(registry: &Registry) -> Self {
        Self {
            connections_accepted: registry.counter("served.connections_accepted"),
            connections_closed: registry.counter("served.connections_closed"),
            quota_rejected: registry.counter("served.quota_rejected"),
            bad_requests: registry.counter("served.bad_requests"),
            protocol_errors: registry.counter("served.protocol_errors"),
        }
    }

    fn snapshot(&self) -> DaemonStats {
        // Read `closed` first: a connection retiring between the two
        // loads can only make `active` read high, never underflow.
        let closed = self.connections_closed.get();
        let accepted = self.connections_accepted.get();
        DaemonStats {
            connections_accepted: accepted,
            connections_active: accepted.saturating_sub(closed),
            quota_rejected: self.quota_rejected.get(),
            bad_requests: self.bad_requests.get(),
            protocol_errors: self.protocol_errors.get(),
        }
    }
}

/// Where one accepted request's reply goes, and under which trace
/// identity the reply is stamped.
#[derive(Debug)]
struct Route {
    tag: u64,
    client: String,
    trace: Option<TraceId>,
    reply: Sender<Json>,
}

/// Matches serve-layer responses to the connections awaiting them.
///
/// `submit` returns the request id *after* the request is already live,
/// so a fast worker can complete it before the reader thread registers
/// the route. The `orphans` side of the map absorbs that race: whichever
/// of {response, route} arrives second completes the pair.
#[derive(Debug, Default)]
struct Dispatcher {
    inner: Mutex<DispatchInner>,
}

#[derive(Debug, Default)]
struct DispatchInner {
    routes: HashMap<u64, Route>,
    orphans: HashMap<u64, EvalResponse>,
}

impl Dispatcher {
    /// Registers where request `id`'s reply should go. If the response
    /// already arrived (orphaned), hands both back for the caller to
    /// deliver.
    fn register(&self, id: u64, route: Route) -> Option<(Route, EvalResponse)> {
        let mut inner = self.inner.lock().expect("dispatcher poisoned");
        if let Some(response) = inner.orphans.remove(&id) {
            return Some((route, response));
        }
        inner.routes.insert(id, route);
        None
    }

    /// Pairs an arriving response with its route, or stashes it as an
    /// orphan until the route is registered.
    fn resolve(&self, response: EvalResponse) -> Option<(Route, EvalResponse)> {
        let mut inner = self.inner.lock().expect("dispatcher poisoned");
        match inner.routes.remove(&response.id.0) {
            Some(route) => Some((route, response)),
            None => {
                inner.orphans.insert(response.id.0, response);
                None
            }
        }
    }

    /// Drops every outstanding route (shutdown), releasing each quota
    /// slot so the ledger ends balanced.
    fn clear(&self, ledger: &AdmissionLedger) {
        let mut inner = self.inner.lock().expect("dispatcher poisoned");
        for (_, route) in inner.routes.drain() {
            ledger.release(&route.client);
        }
        inner.orphans.clear();
    }
}

/// Releases the quota slot and sends the reply frame for one completed
/// response. Used by the router and (for orphan races) reader threads.
fn deliver(shared: &Shared, route: Route, response: EvalResponse) {
    shared.ledger.release(&route.client);
    let frame = match response.outcome {
        Ok(output) => result_frame(
            route.tag,
            &WireOutput {
                label: response.circuit_label,
                point: response.point,
                cache_hit: response.cache_hit,
                latency_ms: response.latency.as_secs_f64() * 1e3,
                trace_id: route.trace,
                reports: output.reports,
            },
        ),
        Err(e) => error_frame(Some(route.tag), &WireError::from_serve(e), route.trace),
    };
    // A send failure means the connection is gone; the result is simply
    // dropped, exactly like an in-process caller hanging up its channel.
    let _ = route.reply.send(frame);
}

fn router_loop(responses: &Receiver<EvalResponse>, shared: &Shared) {
    while let Ok(response) = responses.recv() {
        if let Some((route, response)) = shared.dispatcher.resolve(response) {
            deliver(shared, route, response);
        }
    }
}

fn accept_loop(listener: &TcpListener, server: &Arc<Server>, shared: &Arc<Shared>) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shared.closing.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared.counters.connections_accepted.bump();
        shared
            .conns
            .lock()
            .expect("connection registry poisoned")
            .insert(conn_id, registered);
        let server = Arc::clone(server);
        let shared_for_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            connection_loop(stream, &server, &shared_for_conn);
            // Drop the registry's descriptor so the socket actually
            // closes (FIN) once the reader and writer halves are gone.
            shared_for_conn
                .conns
                .lock()
                .expect("connection registry poisoned")
                .remove(&conn_id);
            shared_for_conn.counters.connections_closed.bump();
        });
        let mut threads = shared
            .conn_threads
            .lock()
            .expect("connection threads poisoned");
        // Reap finished connection threads as new ones arrive, so a
        // long-lived daemon's bookkeeping stays proportional to *live*
        // connections, not to every connection it ever served.
        let mut live = Vec::with_capacity(threads.len() + 1);
        for thread in threads.drain(..) {
            if thread.is_finished() {
                let _ = thread.join();
            } else {
                live.push(thread);
            }
        }
        live.push(handle);
        *threads = live;
    }
}

/// One connection's reader side: handshake, then frame dispatch until
/// `bye`, disconnect, or a fatal protocol error.
fn connection_loop(stream: TcpStream, server: &Arc<Server>, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::<Json>();
    // The writer owns the outbound half so a slow or dead client never
    // blocks the router; it exits when every reply handle drops or the
    // socket breaks. It holds no daemon state.
    std::thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        while let Ok(frame) = reply_rx.recv() {
            if write_frame(&mut writer, &frame).is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(stream);

    // Handshake: the first frame must be a matching `hello`.
    let Ok(first) = read_frame(&mut reader) else {
        return;
    };
    let client = match parse_client_frame(&first) {
        Ok(ClientFrame::Hello { protocol, client }) => {
            if protocol == PROTOCOL_VERSION {
                client
            } else {
                let error = WireError::Protocol {
                    message: format!(
                        "protocol version mismatch: client speaks {protocol}, server speaks {PROTOCOL_VERSION}"
                    ),
                };
                shared.counters.protocol_errors.bump();
                let _ = reply_tx.send(error_frame(None, &error, None));
                return;
            }
        }
        _ => {
            shared.counters.protocol_errors.bump();
            let error = WireError::Protocol {
                message: "expected a `hello` frame first".to_string(),
            };
            let _ = reply_tx.send(error_frame(None, &error, None));
            return;
        }
    };
    let quota = shared.ledger.config();
    let welcome = Welcome {
        protocol: PROTOCOL_VERSION,
        server: SERVER_NAME.to_string(),
        points: server.points().map(str::to_string).collect(),
        designs: Design::ALL.iter().map(|d| d.name().to_string()).collect(),
        max_in_flight: quota.max_in_flight,
        rate_per_sec: quota.rate.map(|r| r.per_sec),
        config: server.config().clone(),
    };
    if reply_tx.send(welcome.to_json()).is_err() {
        return;
    }

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => break,
            Err(FrameError::Io(_)) => break,
            Err(e @ (FrameError::TooLarge { .. } | FrameError::BadPayload(_))) => {
                shared.counters.protocol_errors.bump();
                let error = WireError::Protocol {
                    message: e.to_string(),
                };
                let _ = reply_tx.send(error_frame(None, &error, None));
                break;
            }
        };
        // Recover the tag even from frames that fail to parse, so the
        // error reply still lands on the right request.
        let tag_hint = frame.get("tag").and_then(Json::as_u64);
        match parse_client_frame(&frame) {
            Ok(ClientFrame::Submit { tag, submission }) => {
                handle_submit(tag, &submission, &client, &reply_tx, server, shared);
            }
            Ok(ClientFrame::Stats { tag }) => {
                let frame = stats_reply_frame(tag, &server.stats(), &shared.counters.snapshot());
                if reply_tx.send(frame).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Metrics { tag }) => {
                let frame = metrics_reply_frame(tag, &server.metrics());
                if reply_tx.send(frame).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Trace { tag }) => {
                // Without a configured ring the capture is still well
                // formed — just span-free — so `trace` never errors.
                let capture = match &shared.trace_ring {
                    Some(ring) => {
                        Capture::from_ring(SERVER_NAME, "monotonic", ring, server.metrics())
                    }
                    None => Capture {
                        producer: SERVER_NAME.to_string(),
                        clock: "none".to_string(),
                        spans: Vec::new(),
                        events: Vec::new(),
                        metrics: server.metrics(),
                    },
                };
                if reply_tx.send(trace_reply_frame(tag, &capture)).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Bye) => {
                let _ = reply_tx.send(bye_frame());
                break;
            }
            Ok(ClientFrame::Hello { .. }) => {
                shared.counters.protocol_errors.bump();
                let error = WireError::Protocol {
                    message: "duplicate `hello`".to_string(),
                };
                let _ = reply_tx.send(error_frame(None, &error, None));
                break;
            }
            Err(error @ WireError::Protocol { .. }) => {
                shared.counters.protocol_errors.bump();
                let _ = reply_tx.send(error_frame(tag_hint, &error, None));
                break;
            }
            Err(error) => {
                // A malformed submit is an answerable mistake, not a
                // broken conversation: reply and keep the session.
                shared.counters.bad_requests.bump();
                if reply_tx.send(error_frame(tag_hint, &error, None)).is_err() {
                    break;
                }
            }
        }
    }
}

/// Admission pipeline for one submission: quota, then decode/parse, then
/// the shard queue. Refusals are answered inline; acceptances register a
/// route for the router to complete.
fn handle_submit(
    tag: u64,
    submission: &Submission,
    client: &str,
    reply_tx: &Sender<Json>,
    server: &Arc<Server>,
    shared: &Arc<Shared>,
) {
    if let Err(error) = shared.ledger.admit(client, shared.now_micros()) {
        shared.counters.quota_rejected.bump();
        let _ = reply_tx.send(error_frame(Some(tag), &error, None));
        return;
    }
    // Admitted: the submission owns a trace identity from here on —
    // echoed on its eventual `result` or `error` frame and threaded
    // through the serving layer's span tree when a recorder is
    // installed. Every exit below either registers a route (released on
    // delivery) or releases the slot itself.
    let trace = TraceId::mint();
    let request = match submission.to_eval_request() {
        Ok(request) => request.trace(trace),
        Err(error) => {
            shared.ledger.release(client);
            shared.counters.bad_requests.bump();
            let _ = reply_tx.send(error_frame(Some(tag), &error, Some(trace)));
            return;
        }
    };
    // Static admission analysis: prove the submission can compile on its
    // target point before it costs queue space or a worker. Only the
    // cheap O(ops) subset runs on the wire path.
    if let Some(config) = server.point_config(&request.point) {
        let report = dqc_analyze::Analyzer::new().analyze_admission(
            &request.circuit_label,
            request.circuit.as_ref(),
            config,
        );
        if report.has_errors() {
            shared.ledger.release(client);
            shared.counters.bad_requests.bump();
            let mut errors = report;
            errors.retain_errors();
            let error = WireError::Rejected {
                point: request.point.clone(),
                diagnostics: errors.into_diagnostics(),
            };
            let _ = reply_tx.send(error_frame(Some(tag), &error, Some(trace)));
            return;
        }
    }
    match server.submit(request) {
        Ok(id) => {
            let route = Route {
                tag,
                client: client.to_string(),
                trace: Some(trace),
                reply: reply_tx.clone(),
            };
            if let Some((route, response)) = shared.dispatcher.register(id.0, route) {
                deliver(shared, route, response);
            }
        }
        Err(e) => {
            shared.ledger.release(client);
            let _ = reply_tx.send(error_frame(
                Some(tag),
                &WireError::from_serve(e),
                Some(trace),
            ));
        }
    }
}
