//! The wire's bottom layer: length-prefixed JSON frames.
//!
//! Every message in either direction is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON
//! (compact form on the wire; whitespace is legal since the payload is
//! re-parsed). Length prefixing keeps framing trivial for any client —
//! a shell script can speak it with `head -c` — and the JSON payload
//! rides the workspace's dependency-free `dqc-types::json` layer, so
//! daemon and client serialize through exactly the code the results
//! pipeline already pins.
//!
//! Frames are capped at [`MAX_FRAME_BYTES`]; an oversized length prefix
//! is rejected *before* allocating, so a garbage or hostile peer cannot
//! balloon the daemon's memory.

use dqc_types::Json;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Largest accepted frame payload (16 MiB) — comfortably above any
/// portfolio circuit (QFT-32 serializes under 100 KiB) and far below
/// anything that could hurt the daemon.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An I/O error (including mid-frame EOF, surfaced as
    /// [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The advertised payload length.
        bytes: usize,
    },
    /// The payload is not valid UTF-8 JSON.
    BadPayload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::TooLarge { bytes } => write!(
                f,
                "frame of {bytes} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
            FrameError::BadPayload(message) => write!(f, "bad frame payload: {message}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (compact JSON) and flushes the stream.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the serialized payload exceeds
/// [`MAX_FRAME_BYTES`], otherwise any underlying [`FrameError::Io`].
pub fn write_frame(writer: &mut impl Write, payload: &Json) -> Result<(), FrameError> {
    let text = payload.to_compact_string();
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { bytes: bytes.len() });
    }
    let len = u32::try_from(bytes.len()).expect("MAX_FRAME_BYTES fits u32");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, blocking until a whole frame (or EOF) arrives.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean EOF at a frame boundary;
/// [`FrameError::Io`] with [`io::ErrorKind::UnexpectedEof`] on a
/// mid-frame disconnect; [`FrameError::TooLarge`] /
/// [`FrameError::BadPayload`] on protocol garbage.
pub fn read_frame(reader: &mut impl Read) -> Result<Json, FrameError> {
    let mut prefix = [0u8; 4];
    // A clean close between frames is normal end-of-stream, not an error.
    match reader.read(&mut prefix)? {
        0 => return Err(FrameError::Closed),
        n => reader.read_exact(&mut prefix[n..])?,
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { bytes: len });
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| FrameError::BadPayload(format!("not UTF-8: {e}")))?;
    Json::parse(&text).map_err(|e| FrameError::BadPayload(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let doc = Json::object([
            ("type", Json::from("hello")),
            ("protocol", Json::Int(1)),
            ("nested", Json::Array(vec![Json::float(0.25), Json::Null])),
        ]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &doc).unwrap();
        let mut cursor = wire.as_slice();
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back.to_compact_string(), doc.to_compact_string());
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        for i in 0..5 {
            write_frame(&mut wire, &Json::object([("i", Json::Int(i))])).unwrap();
        }
        let mut cursor = wire.as_slice();
        for i in 0..5 {
            let frame = read_frame(&mut cursor).unwrap();
            assert_eq!(frame.i64_field("i").unwrap(), i);
        }
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn mid_frame_eof_is_an_io_error_not_a_clean_close() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Json::object([("x", Json::Int(1))])).unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        match err {
            FrameError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected Io(UnexpectedEof), got {other}"),
        }
        // A truncated length prefix is equally a mid-frame disconnect.
        let err = read_frame(&mut [0u8, 0u8].as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn garbage_payload_is_a_bad_payload_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&4u32.to_be_bytes());
        wire.extend_from_slice(b"{{{{");
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::BadPayload(_)), "{err}");
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_be_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::BadPayload(_)), "{err}");
    }
}
