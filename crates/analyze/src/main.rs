//! `dqc-analyze` — the static-analysis command line.
//!
//! ```text
//! dqc-analyze [SUBJECT...] [--point paper32|paper64] [--format text|json]
//!             [--deny warnings] [--out FILE] [--corpus]
//!
//! SUBJECT: FILE.qasm   an OpenQASM 2.0 circuit, analyzed against --point
//!        | FILE.json   a ServeConfig document
//! ```
//!
//! Without subjects it analyzes the builtin corpus: every paper
//! benchmark on its matching hardware point plus the default serving
//! configuration. Exit status: 0 clean (or only undenied warnings),
//! 1 findings that fail the severity gate, 2 usage or I/O errors.

use dqc_analyze::{AnalysisReport, Analyzer};
use dqc_core::SystemConfig;
use dqc_serve::ServeConfig;
use dqc_types::Json;
use dqc_workloads::PaperBenchmark;
use std::process::ExitCode;

/// Output rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut subjects: Vec<String> = Vec::new();
    let mut format = Format::Text;
    let mut deny_warnings = false;
    let mut corpus = false;
    let mut point = "paper32".to_string();
    let mut out: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--deny" => match iter.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                _ => return usage("--deny needs `warnings`"),
            },
            "--point" => match iter.next() {
                Some(name) => point = name.clone(),
                None => return usage("--point needs a hardware-point name"),
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => return usage("--out needs a file path"),
            },
            "--corpus" => corpus = true,
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => subjects.push(other.to_string()),
        }
    }
    let Some(point_config) = point_config(&point) else {
        return usage(&format!("unknown hardware point `{point}`"));
    };
    if subjects.is_empty() {
        corpus = true;
    }

    let analyzer = Analyzer::new();
    let mut failed = false;
    let mut merged = AnalysisReport::default();
    let mut analyzed: Vec<(String, AnalysisReport)> = Vec::new();

    if corpus {
        for bench in PaperBenchmark::ALL {
            let config = match bench.num_qubits() {
                32 => SystemConfig::paper_two_node_32(),
                _ => SystemConfig::paper_two_node_64(),
            };
            let label = bench.to_string();
            let report = analyzer.analyze_circuit(&label, &bench.circuit(), &config);
            analyzed.push((format!("builtin circuit {label}"), report));
        }
        analyzed.push((
            "builtin default ServeConfig".to_string(),
            analyzer.analyze_serve_config(&ServeConfig::default()),
        ));
    }
    for subject in &subjects {
        let report = match analyze_file(&analyzer, subject, &point, &point_config) {
            Ok(report) => report,
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        };
        analyzed.push((subject.clone(), report));
    }

    for (subject, report) in analyzed {
        failed |= report.should_fail(deny_warnings);
        if format == Format::Text {
            let (errors, warnings) = report.counts();
            if report.is_clean() {
                println!("{subject}: clean");
            } else {
                println!("{subject}: {errors} error(s), {warnings} warning(s)");
                for diagnostic in report.diagnostics() {
                    println!("  {diagnostic}");
                }
            }
        }
        merged.merge(report);
    }

    if format == Format::Json {
        let text = merged.to_json().to_pretty_string();
        match &out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("wrote {path}");
            }
            None => print!("{text}"),
        }
    } else if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, merged.to_json().to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The named builtin hardware points the CLI can analyze circuits
/// against (the same registry the `dqc-served` daemon offers).
fn point_config(name: &str) -> Option<SystemConfig> {
    match name {
        "paper32" => Some(SystemConfig::paper_two_node_32()),
        "paper64" => Some(SystemConfig::paper_two_node_64()),
        _ => None,
    }
}

/// Dispatches one subject file by extension: `.qasm` circuits are
/// analyzed against the selected point, `.json` documents as serving
/// configurations.
fn analyze_file(
    analyzer: &Analyzer,
    path: &str,
    point: &str,
    point_config: &SystemConfig,
) -> Result<AnalysisReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".qasm") {
        let circuit = dqc_circuit::from_qasm(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(analyzer.analyze_circuit(&format!("{path}@{point}"), &circuit, point_config))
    } else if path.ends_with(".json") {
        let json = Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
        match ServeConfig::from_json(&json) {
            Ok(config) => Ok(analyzer.analyze_serve_config(&config)),
            // An invalid config is a finding, not a crash: surface the
            // loader's typed refusal as the analysis outcome.
            Err(e) => Err(format!("{path}: {e}")),
        }
    } else {
        Err(format!(
            "{path}: unknown subject type (expected .qasm or .json)"
        ))
    }
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: dqc-analyze [SUBJECT...] [--point paper32|paper64] [--format text|json]\n\
         \x20                  [--deny warnings] [--out FILE] [--corpus]\n\
         subjects: FILE.qasm (circuit, analyzed against --point) | FILE.json (ServeConfig)\n\
         default (no subjects): the builtin paper corpus"
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
