//! The analyzer's result container: an ordered list of diagnostics with
//! severity accounting and JSON round-tripping.

use dqc_types::json::{Json, JsonError};
use dqc_types::{Diagnostic, Severity};
use std::fmt;

/// An ordered collection of findings from one or more passes. Reports
/// merge, so front ends can fold a whole corpus into one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`, preserving order.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Drops every warning, keeping errors only (the co-design
    /// prefilter's view: warnings never prune search budget).
    pub fn retain_errors(&mut self) {
        self.diagnostics.retain(Diagnostic::is_error);
    }

    /// The findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding its findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// The codes present, in emission order (with repeats).
    pub fn codes(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.diagnostics.iter().map(|d| d.code)
    }

    /// True when no pass found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Error / warning counts, in that order.
    pub fn counts(&self) -> (usize, usize) {
        let errors = self.diagnostics.iter().filter(|d| d.is_error()).count();
        (errors, self.diagnostics.len() - errors)
    }

    /// Whether a front end should fail: any error, or any warning under
    /// `--deny warnings`.
    pub fn should_fail(&self, deny_warnings: bool) -> bool {
        self.diagnostics.iter().any(|d| {
            d.severity == Severity::Error || (deny_warnings && d.severity == Severity::Warning)
        })
    }

    /// Serializes the report as `{"diagnostics": [...], "errors": N,
    /// "warnings": N}`.
    pub fn to_json(&self) -> Json {
        let (errors, warnings) = self.counts();
        Json::object([
            (
                "diagnostics",
                Json::from(
                    self.diagnostics
                        .iter()
                        .map(Diagnostic::to_json)
                        .collect::<Vec<_>>(),
                ),
            ),
            ("errors", Json::from(errors)),
            ("warnings", Json::from(warnings)),
        ])
    }

    /// Reads a report back from [`AnalysisReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a malformed document or counts that
    /// contradict the findings.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let diagnostics: Vec<Diagnostic> = json
            .array_field("diagnostics")?
            .iter()
            .map(Diagnostic::from_json)
            .collect::<Result<_, _>>()?;
        let report = Self { diagnostics };
        let (errors, warnings) = report.counts();
        if errors != json.usize_field("errors")? || warnings != json.usize_field("warnings")? {
            return Err(JsonError::schema(
                "diagnostic counts contradict the findings list",
            ));
        }
        Ok(report)
    }
}

impl From<Vec<Diagnostic>> for AnalysisReport {
    fn from(diagnostics: Vec<Diagnostic>) -> Self {
        Self { diagnostics }
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean (no diagnostics)");
        }
        for (i, diagnostic) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{diagnostic}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_types::Site;

    fn sample() -> AnalysisReport {
        AnalysisReport::from(vec![
            Diagnostic::new(
                "DQC-E001",
                Site::Circuit("qft-64".to_string()),
                "too wide",
                "shrink it",
            ),
            Diagnostic::new(
                "DQC-W001",
                Site::Qubit {
                    circuit: "qft-64".to_string(),
                    qubit: 5,
                },
                "unused",
                "remove it",
            ),
        ])
    }

    #[test]
    fn report_round_trips_and_counts() {
        let report = sample();
        assert_eq!(report.counts(), (1, 1));
        assert!(report.has_errors());
        assert!(report.should_fail(false));
        let text = report.to_json().to_pretty_string();
        let back = AnalysisReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn warnings_fail_only_when_denied() {
        let mut report = sample();
        report.retain_errors();
        assert_eq!(report.counts(), (1, 0));
        let warnings_only = AnalysisReport::from(vec![Diagnostic::new(
            "DQC-W004",
            Site::Circuit("ghz".to_string()),
            "serial",
            "tree",
        )]);
        assert!(!warnings_only.should_fail(false));
        assert!(warnings_only.should_fail(true));
        assert!(!warnings_only.has_errors());
    }

    #[test]
    fn tampered_counts_are_schema_errors() {
        let mut json = sample().to_json();
        if let Json::Object(members) = &mut json {
            for (key, value) in members.iter_mut() {
                if key == "errors" {
                    *value = Json::from(7usize);
                }
            }
        }
        assert!(AnalysisReport::from_json(&json).is_err());
    }
}
