//! `dqc-analyze` — the static diagnostics engine.
//!
//! Every other layer of this workspace discovers misconfiguration
//! *dynamically*: a non-Clifford circuit forced onto the stabilizer
//! backend fails inside `CompiledCircuit::compile`, an unservable EPR
//! demand stalls a live engine run, a degenerate `ServeConfig` surprises
//! a running daemon. This crate proves those properties **before any
//! simulation budget is spent**, by walking circuits, schedules,
//! [`dqc_core::DesignSpace`] points,
//! [`dqc_entanglement::NetworkTopology`] graphs, and
//! [`ServeConfig`]s without executing anything, and reporting findings as
//! the coded, JSON-round-tripping [`Diagnostic`] taxonomy from
//! `dqc_types::diag`.
//!
//! The passes:
//!
//! * **Circuit lints** — unused qubits (`DQC-W001`), gates applied after
//!   a qubit's measurement (`DQC-W002`), fully serialized multi-qubit
//!   circuits with zero schedule slack (`DQC-W004`).
//! * **Backend-compatibility proofs** — the exact rules
//!   `CompiledCircuit::compile` enforces, decided at analysis time:
//!   width vs. data capacity (`DQC-E001`), stabilizer × non-Clifford
//!   (`DQC-E002`), density × width (`DQC-E003`).
//! * **Topology checks** — node-count mismatch (`DQC-E004`) and
//!   disconnected multi-node graphs (`DQC-E005`).
//! * **Link feasibility** — the partition map and routing table the
//!   compiler would build give per-link EPR demand; comparing it against
//!   comm-qubit counts and generation rates yields `DQC-E006`/`DQC-E007`
//!   (a remote gate can *never* be served) and `DQC-W003` (demand so far
//!   beyond link capacity that entanglement dominates the schedule).
//! * **Portfolio hints** — fusable duplicate submissions while replay
//!   fusion is disabled (`DQC-W005`).
//! * **Serve-config validation** — re-exported from
//!   [`ServeConfig::validate`]: budget/floor/rate/burst invariants
//!   (`DQC-E008`…`DQC-E012`, `DQC-W006`, `DQC-W007`).
//!
//! # Examples
//!
//! Prove a backend mismatch without compiling:
//!
//! ```
//! use dqc_analyze::Analyzer;
//! use dqc_core::{Backend, SystemConfig};
//! use dqc_workloads::PaperBenchmark;
//!
//! let config = SystemConfig::paper_two_node_32().with_backend(Backend::Stabilizer);
//! let circuit = PaperBenchmark::Qft32.circuit(); // controlled-phase: non-Clifford
//! let report = Analyzer::new().analyze_circuit("QFT-32", &circuit, &config);
//! assert!(report.codes().any(|c| c == "DQC-E002"));
//! ```

use dqc_circuit::{Circuit, Gate};
use dqc_core::{Backend, Design, DesignSpace, SystemConfig, DENSITY_MAX_QUBITS};
use dqc_entanglement::{NetworkTopology, RoutingTable};
use dqc_partition::{partition_circuit, partition_circuit_weighted, QubitMap};
use dqc_serve::ServeConfig;
use dqc_types::json::{Json, JsonError};
use dqc_types::{Diagnostic, Site};
use std::collections::BTreeMap;

mod report;

pub use report::AnalysisReport;

/// The static analyzer: a bundle of pure passes over circuits, system
/// configurations, topologies, design spaces, portfolios, and serve
/// configs. Stateless apart from its thresholds; cheap to construct.
///
/// Every `analyze_*` method returns an [`AnalysisReport`]; reports
/// merge, so a front end can fold many subjects into one document.
#[derive(Debug, Clone)]
pub struct Analyzer {
    /// `DQC-W003` fires when the estimated entanglement-generation time
    /// exceeds the circuit's critical path by this factor. The default
    /// (32×) sits ~3× above the paper corpus's worst case (QFT-32 at
    /// ~10×), so the shipped benchmarks analyze clean while an
    /// entanglement-starved configuration is still caught.
    pub epr_stretch_threshold: f64,
    /// `DQC-W004` ignores circuits shorter than this (a handful of
    /// serial gates is not a scheduling hazard).
    pub min_serialized_ops: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self {
            epr_stretch_threshold: 32.0,
            min_serialized_ops: 8,
        }
    }
}

impl Analyzer {
    /// An analyzer with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs every circuit-level pass: lints, backend proofs, topology
    /// checks, and (when the circuit fits a multi-node system) the
    /// link-feasibility bounds.
    pub fn analyze_circuit(
        &self,
        label: &str,
        circuit: &Circuit,
        config: &SystemConfig,
    ) -> AnalysisReport {
        let mut report = self.lint_circuit(label, circuit);
        report.merge(self.analyze_admission(label, circuit, config));
        // The link-feasibility bounds need the partition map; skip them
        // when an error above already proves compilation impossible.
        if !report.has_errors() && config.num_nodes > 1 {
            report.merge(self.check_links(label, circuit, config));
        }
        report
    }

    /// The cheap O(ops) admission subset: width (`DQC-E001`), backend
    /// compatibility (`DQC-E002`/`DQC-E003`), and topology sanity
    /// (`DQC-E004`/`DQC-E005`) — every check that proves a compile
    /// *must* fail, without partitioning or scheduling anything. This is
    /// what the `dqc-served` daemon runs on its wire path before
    /// spending queue space on a submission.
    pub fn analyze_admission(
        &self,
        label: &str,
        circuit: &Circuit,
        config: &SystemConfig,
    ) -> AnalysisReport {
        let mut report = self.analyze_system(config);
        let capacity = config.total_data_qubits();
        if circuit.num_qubits() as usize > capacity {
            report.push(Diagnostic::new(
                "DQC-E001",
                Site::Circuit(label.to_string()),
                format!(
                    "circuit uses {} qubits but the system holds {capacity} data qubits \
                     ({} nodes x {})",
                    circuit.num_qubits(),
                    config.num_nodes,
                    config.data_qubits_per_node
                ),
                "shrink the circuit or add nodes/data qubits",
            ));
        }
        report.merge(self.check_backend(label, circuit, config));
        report
    }

    /// The execution-free circuit lints: `DQC-W001` (unused qubit),
    /// `DQC-W002` (gate after measurement), `DQC-W004` (zero slack).
    pub fn lint_circuit(&self, label: &str, circuit: &Circuit) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        let mut touched = vec![false; circuit.num_qubits() as usize];
        let mut measured_at: Vec<Option<usize>> = vec![None; circuit.num_qubits() as usize];
        let mut flagged_after_measure = vec![false; circuit.num_qubits() as usize];
        for (index, op) in circuit.operations().iter().enumerate() {
            for &qubit in op.qubits() {
                let q = qubit.index() as usize;
                touched[q] = true;
                if let Some(measure_index) = measured_at[q] {
                    if !flagged_after_measure[q] {
                        flagged_after_measure[q] = true;
                        report.push(Diagnostic::new(
                            "DQC-W002",
                            Site::Gate {
                                circuit: label.to_string(),
                                index,
                            },
                            format!(
                                "{} acts on qubit {q} after its measurement at op #{measure_index}",
                                op.gate()
                            ),
                            "move the measurement after the qubit's last gate, or drop it",
                        ));
                    }
                }
                if op.gate() == Gate::Measure {
                    measured_at[q].get_or_insert(index);
                }
            }
        }
        for (q, touched) in touched.iter().enumerate() {
            if !touched {
                report.push(Diagnostic::new(
                    "DQC-W001",
                    Site::Qubit {
                        circuit: label.to_string(),
                        qubit: q as u32,
                    },
                    format!("qubit {q} is declared but never operated on"),
                    "narrow the circuit width or add the missing operations",
                ));
            }
        }
        // Zero slack: every operation sits alone in its dependency layer,
        // so nothing can ever run in parallel and distribution buys no
        // depth. `depth()` is the DAG's critical-path length in layers.
        if circuit.num_qubits() >= 2
            && circuit.len() >= self.min_serialized_ops
            && circuit.depth() == circuit.len()
        {
            report.push(Diagnostic::new(
                "DQC-W004",
                Site::Circuit(label.to_string()),
                format!(
                    "all {} operations form one serial chain (critical path = circuit \
                     length, zero schedule slack)",
                    circuit.len()
                ),
                "restructure for parallelism (e.g. a tree instead of a chain)",
            ));
        }
        report
    }

    /// The static backend-compatibility proofs, mirroring the rules
    /// `CompiledCircuit::compile` enforces dynamically.
    fn check_backend(
        &self,
        label: &str,
        circuit: &Circuit,
        config: &SystemConfig,
    ) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        if config.backend == Backend::Stabilizer {
            if let Some((index, op)) = circuit
                .operations()
                .iter()
                .enumerate()
                .find(|(_, op)| !op.gate().is_clifford())
            {
                report.push(Diagnostic::new(
                    "DQC-E002",
                    Site::Gate {
                        circuit: label.to_string(),
                        index,
                    },
                    format!(
                        "backend `stabilizer` cannot execute non-Clifford gate {}",
                        op.gate()
                    ),
                    "select the `auto`, `analytic`, or `density` backend, \
                     or Cliffordize the circuit",
                ));
            }
        }
        if config.backend == Backend::Density && circuit.num_qubits() > DENSITY_MAX_QUBITS {
            report.push(Diagnostic::new(
                "DQC-E003",
                Site::Circuit(label.to_string()),
                format!(
                    "backend `density` is limited to {DENSITY_MAX_QUBITS} qubits but the \
                     circuit has {}",
                    circuit.num_qubits()
                ),
                "select the `auto` or `analytic` backend for wide circuits",
            ));
        }
        report
    }

    /// Topology checks of a system configuration: `DQC-E004` node-count
    /// mismatch, `DQC-E005` disconnected multi-node graph.
    pub fn analyze_system(&self, config: &SystemConfig) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        if let Some(topology) = &config.topology {
            report.merge(self.analyze_topology(topology, config.num_nodes));
        }
        report
    }

    /// Checks a topology graph against the node count a configuration
    /// declares.
    pub fn analyze_topology(
        &self,
        topology: &NetworkTopology,
        expected_nodes: usize,
    ) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        if topology.num_nodes() != expected_nodes {
            report.push(Diagnostic::new(
                "DQC-E004",
                Site::Field("topology".to_string()),
                format!(
                    "topology spans {} nodes but the configuration declares {expected_nodes}",
                    topology.num_nodes()
                ),
                "make the topology and `num_nodes` agree",
            ));
        } else if expected_nodes > 1 && !topology.is_connected() {
            report.push(Diagnostic::new(
                "DQC-E005",
                Site::Field("topology".to_string()),
                "the topology is disconnected: some node pairs have no entanglement route"
                    .to_string(),
                "add links until every node is reachable",
            ));
        }
        report
    }

    /// The per-link EPR-demand feasibility bounds. Mirrors the compiler's
    /// partitioning (same strategy, seed, and hop weights) to place
    /// qubits, routes every remote gate over the configured topology, and
    /// compares demand against what the comm qubits can generate.
    fn check_links(&self, label: &str, circuit: &Circuit, config: &SystemConfig) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        let Some(map) = mirror_partition(circuit, config) else {
            return report; // partitioner failure surfaces at compile time
        };
        let remote_gates = map.count_remote(circuit);
        if remote_gates == 0 {
            return report;
        }
        let site = Site::Circuit(label.to_string());
        if config.comm_qubits_per_node == 0 {
            report.push(Diagnostic::new(
                "DQC-E006",
                site,
                format!(
                    "{remote_gates} remote gates need entanglement but \
                     `comm_qubits_per_node` is 0"
                ),
                "provision communication qubits or repartition onto one node",
            ));
            return report;
        }
        let links_per_gate = config.remote_protocol.links_per_gate();
        let holdable = config.comm_qubits_per_node + config.buffer_qubits_per_node;
        if links_per_gate > holdable {
            report.push(Diagnostic::new(
                "DQC-E007",
                site,
                format!(
                    "protocol `{}` holds {links_per_gate} EPR pairs per remote gate but a \
                     node stores at most {holdable} (comm {} + buffer {})",
                    config.remote_protocol,
                    config.comm_qubits_per_node,
                    config.buffer_qubits_per_node
                ),
                "add comm/buffer qubits or switch to gate teleportation",
            ));
            return report;
        }
        // Demand per physical link: every remote gate consumes
        // `links_per_gate` end-to-end pairs; over a sparse topology each
        // pair is built by swap chains that occupy every edge of the
        // route. A link generates at most one attempt per comm qubit per
        // EPR cycle, each succeeding with `success_probability`.
        let routing = config.topology.as_ref().map(RoutingTable::new);
        let mut demand: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for op in circuit.operations() {
            if !map.is_remote(op) {
                continue;
            }
            let a = map.node_of(op.qubits()[0]);
            let b = map.node_of(op.qubits()[1]);
            match &routing {
                Some(table) => {
                    if let Some(route) = table.route(a, b) {
                        for (x, y) in route.edges() {
                            let key = ordered(x.index() as usize, y.index() as usize);
                            *demand.entry(key).or_insert(0) += links_per_gate;
                        }
                    }
                }
                None => {
                    let key = ordered(a.index() as usize, b.index() as usize);
                    *demand.entry(key).or_insert(0) += links_per_gate;
                }
            }
        }
        let Some((&(a, b), &peak)) = demand.iter().max_by_key(|(_, &count)| count) else {
            return report;
        };
        let rate = config.comm_qubits_per_node as f64 * config.success_probability;
        let generation_ticks =
            peak as f64 * config.latencies.epr_cycle.ticks() as f64 / rate.max(f64::MIN_POSITIVE);
        let critical_path_ticks = (circuit.timed_depth().ticks() as f64).max(1.0);
        let stretch = generation_ticks / critical_path_ticks;
        if stretch > self.epr_stretch_threshold {
            report.push(Diagnostic::new(
                "DQC-W003",
                Site::Link { a, b },
                format!(
                    "link {a}-{b} must supply {peak} EPR pairs, ~{generation_ticks:.0} ticks \
                     of generation against a {critical_path_ticks:.0}-tick critical path \
                     ({stretch:.1}x stretch) for `{label}`"
                ),
                "add comm qubits, raise the success probability, or cut fewer gates \
                 across this link",
            ));
        }
        report
    }

    /// Analyzes every point of a design space against a circuit,
    /// error-level checks only — the prefilter `dqc-codesign` runs before
    /// spending replay budget. Returns the statically infeasible point
    /// indices with the proof for each.
    pub fn infeasible_points(
        &self,
        space: &DesignSpace,
        circuit_label: &str,
        circuit: &Circuit,
        indices: &[usize],
    ) -> Vec<(usize, AnalysisReport)> {
        let mut pruned = Vec::new();
        for &index in indices {
            let Ok(point) = space.point(index) else {
                continue; // out-of-range indices fail in the sweep itself
            };
            let scenario = space.realize(&point);
            let mut report = AnalysisReport::default();
            let capacity = scenario.config.total_data_qubits();
            if circuit.num_qubits() as usize > capacity {
                report.push(Diagnostic::new(
                    "DQC-E001",
                    Site::Point(format!("{circuit_label}@{index}")),
                    format!(
                        "circuit uses {} qubits but point {index} holds {capacity}",
                        circuit.num_qubits()
                    ),
                    "drop the point from the space or widen its hardware",
                ));
            }
            report.merge(self.check_backend(circuit_label, circuit, &scenario.config));
            report.merge(self.analyze_system(&scenario.config));
            report.retain_errors();
            if report.has_errors() {
                pruned.push((index, report));
            }
        }
        pruned
    }

    /// Validates a serving configuration (delegates to
    /// [`ServeConfig::validate`], which owns the invariants).
    pub fn analyze_serve_config(&self, config: &ServeConfig) -> AnalysisReport {
        AnalysisReport::from(config.validate())
    }

    /// Fusion-eligibility hints for a batch portfolio: when replay fusion
    /// is disabled but the portfolio repeats (circuit, point, design)
    /// combinations, each repeated group is flagged `DQC-W005` — those
    /// replays would coalesce for free with fusion on.
    pub fn analyze_portfolio(
        &self,
        items: &[PortfolioItem<'_>],
        config: &ServeConfig,
    ) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        if config.fusion {
            return report;
        }
        let mut groups: BTreeMap<(u64, &str, String), (usize, &str)> = BTreeMap::new();
        for item in items {
            let key = (
                item.circuit.fingerprint(),
                item.point,
                item.design.to_string(),
            );
            let entry = groups.entry(key).or_insert((0, item.label));
            entry.0 += 1;
        }
        for ((_, point, design), (count, label)) in groups {
            if count > 1 {
                report.push(Diagnostic::new(
                    "DQC-W005",
                    Site::Point(point.to_string()),
                    format!(
                        "`{label}` x {design} is submitted {count} times to `{point}` \
                         but replay fusion is disabled"
                    ),
                    "enable `fusion` so duplicate replays coalesce into one",
                ));
            }
        }
        report
    }
}

/// One portfolio entry for [`Analyzer::analyze_portfolio`].
#[derive(Debug, Clone, Copy)]
pub struct PortfolioItem<'a> {
    /// The submission's circuit label.
    pub label: &'a str,
    /// The circuit itself.
    pub circuit: &'a Circuit,
    /// The hardware point it targets.
    pub point: &'a str,
    /// The design it runs.
    pub design: Design,
}

/// Reproduces the compiler's qubit placement: same strategy selection,
/// same seed, same hop weights — so the analyzer reasons about the
/// partition the engine would actually use.
fn mirror_partition(circuit: &Circuit, config: &SystemConfig) -> Option<QubitMap> {
    use dqc_core::PartitionStrategy::{Auto, HopWeighted, Unweighted};
    let routing = config.topology.as_ref().map(RoutingTable::new);
    let weighted = |matrix: Vec<Vec<u64>>| {
        partition_circuit_weighted(circuit, config.num_nodes, config.partition_seed, &matrix).ok()
    };
    match (config.partitioner, &routing) {
        (Auto | HopWeighted, Some(table)) => weighted(table.hop_distance_matrix()),
        (Auto | Unweighted, None) | (Unweighted, Some(_)) => {
            partition_circuit(circuit, config.num_nodes, config.partition_seed).ok()
        }
        (HopWeighted, None) => {
            weighted(NetworkTopology::all_to_all(config.num_nodes).hop_distance_matrix())
        }
    }
}

/// Orders a node pair so links hash consistently regardless of gate
/// direction.
fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

// Re-exports the CLI and the fixture tests lean on.
pub use dqc_types::diag::{code_info, CodeInfo, REGISTRY};

/// Parses a JSON array of diagnostics (the CLI's `--format json` output
/// payload) back into typed findings.
pub fn diagnostics_from_json(json: &Json) -> Result<Vec<Diagnostic>, JsonError> {
    json.as_array()
        .ok_or_else(|| JsonError::schema("diagnostics payload must be an array"))?
        .iter()
        .map(Diagnostic::from_json)
        .collect()
}
