//! Command-line driver that regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro [TARGET...] [--runs N] [--seed S]
//!
//! TARGET: table1 | table2 | fig3 | fig5 | fig6 | fig56 | fig7 | fig8
//!       | topology-sweep
//!       | ablate-cutoff | ablate-psucc | ablate-segment
//!       | ablate-protocol | ablate-purification
//!       | ablations (all five) | all
//!
//! `fig56` prints Figures 5 and 6 from one shared sweep; `all` uses it
//! in place of running `fig5` and `fig6` separately.
//! ```
//!
//! Without arguments it runs everything with the paper's 50-run averages.
//! Figure and ablation targets execute as parallel `Sweep` grids.

use dqc_core::{DqcError, SystemConfig};
use std::process::ExitCode;

/// A target's runner: (runs, seed) → outcome.
type Runner = fn(usize, u64) -> Result<(), DqcError>;

/// Every runnable target, in `all` execution order.
const TARGETS: &[(&str, Runner)] = &[
    ("table1", |_, _| {
        dqc_bench::print_table1(&dqc_bench::table1_data());
        Ok(())
    }),
    ("table2", |_, _| {
        dqc_bench::print_table2(&SystemConfig::paper_two_node_32());
        Ok(())
    }),
    ("fig3", |_, seed| {
        dqc_bench::print_fig3(seed);
        Ok(())
    }),
    ("fig5", dqc_bench::run_fig5),
    ("fig6", dqc_bench::run_fig6),
    ("fig56", dqc_bench::run_fig56),
    ("fig7", dqc_bench::run_fig7),
    ("fig8", dqc_bench::run_fig8),
    ("topology-sweep", dqc_bench::run_topology_sweep),
    ("ablate-cutoff", dqc_bench::run_cutoff_ablation),
    ("ablate-psucc", dqc_bench::run_psucc_ablation),
    ("ablate-segment", dqc_bench::run_segment_ablation),
    ("ablate-protocol", dqc_bench::run_protocol_ablation),
    ("ablate-purification", dqc_bench::run_purification_ablation),
];

/// Expands one CLI word into the targets it names.
fn expand(name: &str) -> Option<Vec<&'static str>> {
    match name {
        // Figures 5 and 6 render the same sweep, so `all` takes the
        // combined `fig56` target and pays for that grid only once.
        "all" => Some(
            TARGETS
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| *n != "fig5" && *n != "fig6")
                .collect(),
        ),
        "ablations" => Some(
            TARGETS
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| n.starts_with("ablate-"))
                .collect(),
        ),
        _ => TARGETS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(n, _)| vec![*n]),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<&'static str> = Vec::new();
    let mut runs = dqc_bench::PAPER_RUNS;
    let mut seed = dqc_bench::BASE_SEED;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--runs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = v,
                None => return usage("--runs needs an integer"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => match expand(other) {
                Some(expanded) => targets.extend(expanded),
                None => return usage(&format!("unknown target {other}")),
            },
        }
    }
    if targets.is_empty() {
        targets = expand("all").expect("all is always a target");
    }

    for (i, target) in targets.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let runner = TARGETS
            .iter()
            .find(|(n, _)| n == target)
            .map(|(_, f)| *f)
            .expect("expanded targets are valid");
        if let Err(e) = runner(runs, seed) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: repro [TARGET...] [--runs N] [--seed S]\n\
         targets: table1 table2 fig3 fig5 fig6 fig56 fig7 fig8\n\
         \x20        topology-sweep\n\
         \x20        ablate-cutoff ablate-psucc ablate-segment\n\
         \x20        ablate-protocol ablate-purification\n\
         \x20        ablations (all five ablations) | all (everything)"
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
