//! Command-line driver that regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro [table1|table2|fig3|fig5|fig6|fig7|fig8|ablations|all] [--runs N] [--seed S]
//! ```
//!
//! Without arguments it runs everything with the paper's 50-run averages.

use dqc_core::SystemConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut runs = dqc_bench::PAPER_RUNS;
    let mut seed = dqc_bench::BASE_SEED;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--runs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = v,
                None => return usage("--runs needs an integer"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    for target in &targets {
        let outcome = match target.as_str() {
            "table1" => {
                dqc_bench::print_table1(&dqc_bench::table1_data());
                Ok(())
            }
            "table2" => {
                dqc_bench::print_table2(&SystemConfig::paper_two_node_32());
                Ok(())
            }
            "fig3" => {
                dqc_bench::print_fig3(seed);
                Ok(())
            }
            "fig5" => dqc_bench::run_fig5(runs, seed),
            "fig6" => dqc_bench::run_fig6(runs, seed),
            "fig7" => dqc_bench::run_fig7(runs, seed),
            "fig8" => dqc_bench::run_fig8(runs, seed),
            "ablations" => dqc_bench::run_cutoff_ablation(runs, seed)
                .and_then(|()| dqc_bench::run_psucc_ablation(runs, seed))
                .and_then(|()| dqc_bench::run_segment_ablation(runs, seed))
                .and_then(|()| dqc_bench::run_protocol_ablation(runs, seed))
                .and_then(|()| dqc_bench::run_purification_ablation(runs, seed)),
            "all" => {
                dqc_bench::print_table1(&dqc_bench::table1_data());
                println!();
                dqc_bench::print_table2(&SystemConfig::paper_two_node_32());
                println!();
                dqc_bench::print_fig3(seed);
                println!();
                dqc_bench::run_fig5(runs, seed)
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_fig6(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_fig7(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_fig8(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_cutoff_ablation(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_psucc_ablation(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_segment_ablation(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_protocol_ablation(runs, seed)
                    })
                    .and_then(|()| {
                        println!();
                        dqc_bench::run_purification_ablation(runs, seed)
                    })
            }
            other => return usage(&format!("unknown target {other}")),
        };
        if let Err(e) = outcome {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: repro [table1|table2|fig3|fig5|fig6|fig7|fig8|ablations|all] \
         [--runs N] [--seed S]"
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
