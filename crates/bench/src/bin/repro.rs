//! Command-line driver that regenerates every table and figure of the
//! paper's evaluation, as human-readable tables or machine-readable JSON
//! artifacts, and diffs artifacts against golden files.
//!
//! ```text
//! repro [TARGET...] [--runs N] [--seed S] [--format table|json] [--out DIR]
//!       [--backend auto|analytic|stabilizer|density] [--profile DIR]
//! repro diff <a.json> <b.json> [--tol EPS]
//!
//! TARGET: table1 | table2 | fig3 | fig5 | fig6 | fig56 | fig7 | fig8
//!       | topology-sweep | codesign
//!       | ablate-cutoff | ablate-psucc | ablate-segment
//!       | ablate-protocol | ablate-purification
//!       | backend-matrix | analyze
//!       | ablations (all five) | all
//!
//! `fig56` prints Figures 5 and 6 from one shared sweep; `all` uses it
//! in place of running `fig5` and `fig6` separately. `--backend` selects
//! the simulation engine every target runs on (default `analytic`, the
//! bit-for-bit reference; `auto` upgrades Clifford-only circuits to the
//! stabilizer fast path); `backend-matrix` sweeps all engines explicitly
//! and ignores the flag; `analyze` runs the static analyzer over the
//! shipped corpus without executing anything.
//! ```
//!
//! Without arguments it runs everything with the paper's 50-run averages
//! in table format. With `--format json` each target's numbers are
//! serialized as one [`dqc_bench::Artifact`] — to stdout, or to
//! `DIR/<target>.json` when `--out` is given. `repro diff` compares two
//! artifacts structurally, treating numbers within `EPS` (mixed
//! absolute/relative, default 1e-9) as equal; it exits non-zero when they
//! differ, which is the CI golden-file regression gate.
//!
//! `--profile DIR` runs the selected targets with a span recorder and
//! the monotonic clock installed and writes the resulting capture
//! (compile and replay span trees) to `DIR/profile_repro.json`,
//! readable by `dqc-obs report`. Recording never changes any computed
//! number — the workspace's determinism tests pin that — but it does
//! add tracing overhead, so profile runs are not timing-representative.

use dqc_bench::Artifact;
use dqc_core::DqcError;
use dqc_types::json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A target's table-mode runner: (runs, seed) → outcome.
type Runner = fn(usize, u64) -> Result<(), DqcError>;

/// Every runnable target, in `all` execution order.
const TARGETS: &[(&str, Runner)] = &[
    ("table1", |_, _| {
        dqc_bench::print_table1(&dqc_bench::table1_data());
        Ok(())
    }),
    ("table2", |_, _| {
        dqc_bench::print_table2(&dqc_bench::paper_config_32());
        Ok(())
    }),
    ("fig3", |_, seed| {
        dqc_bench::print_fig3(seed);
        Ok(())
    }),
    ("fig5", dqc_bench::run_fig5),
    ("fig6", dqc_bench::run_fig6),
    ("fig56", dqc_bench::run_fig56),
    ("fig7", dqc_bench::run_fig7),
    ("fig8", dqc_bench::run_fig8),
    ("topology-sweep", dqc_bench::run_topology_sweep),
    ("codesign", dqc_bench::run_codesign),
    ("ablate-cutoff", dqc_bench::run_cutoff_ablation),
    ("ablate-psucc", dqc_bench::run_psucc_ablation),
    ("ablate-segment", dqc_bench::run_segment_ablation),
    ("ablate-protocol", dqc_bench::run_protocol_ablation),
    ("ablate-purification", dqc_bench::run_purification_ablation),
    ("backend-matrix", dqc_bench::run_backend_matrix),
    ("analyze", dqc_bench::run_analyze),
];

/// Output rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// The paper's pretty-printed terminal tables (default).
    Table,
    /// One JSON artifact per target.
    Json,
}

/// Expands one CLI word into the targets it names.
fn expand(name: &str) -> Option<Vec<&'static str>> {
    match name {
        // Figures 5 and 6 render the same sweep, so `all` takes the
        // combined `fig56` target and pays for that grid only once.
        "all" => Some(
            TARGETS
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| *n != "fig5" && *n != "fig6")
                .collect(),
        ),
        "ablations" => Some(
            TARGETS
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| n.starts_with("ablate-"))
                .collect(),
        ),
        _ => TARGETS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(n, _)| vec![*n]),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        return run_diff(&args[1..]);
    }

    let mut targets: Vec<&'static str> = Vec::new();
    let mut runs = dqc_bench::PAPER_RUNS;
    let mut seed = dqc_bench::BASE_SEED;
    let mut format = Format::Table;
    let mut out_dir: Option<PathBuf> = None;
    let mut profile_dir: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--runs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = v,
                None => return usage("--runs needs an integer"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                // Capped at i64::MAX: larger seeds would lose precision
                // through the artifact envelope's integer encoding, so
                // the recorded provenance could not regenerate the data.
                Some(v) if v <= i64::MAX as u64 => seed = v,
                Some(_) => return usage("--seed must fit a signed 64-bit integer"),
                None => return usage("--seed needs an integer"),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("table") => format = Format::Table,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `table` or `json`"),
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return usage("--out needs a directory"),
            },
            "--backend" => match iter.next().map(|v| v.parse()) {
                Some(Ok(backend)) => dqc_bench::set_backend(backend),
                Some(Err(e)) => return usage(&format!("--backend: {e}")),
                None => return usage("--backend needs an engine name"),
            },
            "--profile" => match iter.next() {
                Some(dir) => profile_dir = Some(PathBuf::from(dir)),
                None => return usage("--profile needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => match expand(other) {
                Some(expanded) => targets.extend(expanded),
                None => return usage(&format!("unknown target {other}")),
            },
        }
    }
    if out_dir.is_some() && format == Format::Table {
        // `--out` only makes sense for artifacts; writing silently nothing
        // would look like success.
        return usage("--out requires --format json");
    }
    if targets.is_empty() {
        targets = expand("all").expect("all is always a target");
    }
    if format == Format::Json && out_dir.is_none() && targets.len() > 1 {
        // Concatenated pretty documents would not be parseable JSON.
        return usage("multiple --format json targets need --out (one file per target)");
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // With `--profile`, the targets below run under an installed span
    // recorder; recording changes no computed number, only captures the
    // compile/replay span trees as they happen.
    let recording = profile_dir.as_ref().map(|_| {
        let ring = std::sync::Arc::new(dqc_obs::RingRecorder::new(262_144));
        let session = dqc_obs::install(
            std::sync::Arc::clone(&ring) as std::sync::Arc<dyn dqc_obs::Recorder>,
            std::sync::Arc::new(dqc_obs::MonotonicClock::new()),
        );
        (ring, session)
    });

    for (i, target) in targets.iter().enumerate() {
        let outcome = match format {
            Format::Table => {
                if i > 0 {
                    println!();
                }
                let runner = TARGETS
                    .iter()
                    .find(|(n, _)| n == target)
                    .map(|(_, f)| *f)
                    .expect("expanded targets are valid");
                runner(runs, seed).map_err(|e| e.to_string())
            }
            Format::Json => emit_artifact(target, runs, seed, out_dir.as_deref()),
        };
        if let Err(e) = outcome {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let (Some(dir), Some((ring, session))) = (profile_dir, recording) {
        drop(session);
        let capture = dqc_obs::Capture::from_ring(
            "repro",
            "monotonic",
            &ring,
            dqc_obs::MetricsSnapshot::default(),
        );
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("profile_repro.json");
        if let Err(e) = std::fs::write(&path, capture.to_json().to_pretty_string()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Builds one target's artifact and writes it to `DIR/<target>.json`, or
/// prints it to stdout when no directory was given.
fn emit_artifact(
    target: &str,
    runs: usize,
    seed: u64,
    out_dir: Option<&Path>,
) -> Result<(), String> {
    // Guard against registry drift: a target listed in TARGETS (table
    // mode) but missing from the artifact dispatch must fail cleanly,
    // not panic inside `Artifact::build`.
    if !dqc_bench::target_names().contains(&target) {
        return Err(format!("target {target} has no JSON artifact"));
    }
    let artifact = Artifact::build(target, runs, seed).map_err(|e| e.to_string())?;
    match out_dir {
        Some(dir) => {
            let path = dir.join(artifact.file_name());
            std::fs::write(&path, artifact.to_pretty_string())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
        None => print!("{}", artifact.to_pretty_string()),
    }
    Ok(())
}

/// `repro diff a.json b.json [--tol EPS]`: the golden-file gate.
fn run_diff(args: &[String]) -> ExitCode {
    let mut files: Vec<&str> = Vec::new();
    let mut tol = 1e-9f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tol" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 0.0 => tol = v,
                _ => return usage("--tol needs a non-negative number"),
            },
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => files.push(other),
        }
    }
    let [a_path, b_path] = files.as_slice() else {
        return usage("diff needs exactly two artifact files");
    };

    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let diffs = json::diff(&a, &b, tol);
    if diffs.is_empty() {
        println!("{a_path} and {b_path} match within tolerance {tol:e}");
        return ExitCode::SUCCESS;
    }
    const SHOWN: usize = 25;
    eprintln!(
        "{a_path} and {b_path} differ ({} sites, tolerance {tol:e}):",
        diffs.len()
    );
    for d in diffs.iter().take(SHOWN) {
        eprintln!("  {d}");
    }
    if diffs.len() > SHOWN {
        eprintln!("  ... and {} more", diffs.len() - SHOWN);
    }
    ExitCode::FAILURE
}

/// Reads one artifact file and extracts what `diff` compares: the target
/// name and the payload. The envelope's `runs`/`seed` are provenance,
/// not results — a deterministic target emitted at different run counts
/// is still the same data, and for sweep targets every averaged report
/// carries its own `runs` field inside the payload — so they are
/// deliberately left out of the comparison. The schema version is
/// validated here, so version skew is reported as such rather than as
/// field-level noise.
fn load(path: &str) -> Result<dqc_types::Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    match Artifact::parse(&text) {
        Ok(artifact) => Ok(dqc_types::Json::object([
            ("target", dqc_types::Json::from(artifact.target.as_str())),
            ("data", artifact.data),
        ])),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: repro [TARGET...] [--runs N] [--seed S] [--format table|json] [--out DIR]\n\
         \x20             [--backend auto|analytic|stabilizer|density] [--profile DIR]\n\
         \x20      repro diff <a.json> <b.json> [--tol EPS]\n\
         targets: table1 table2 fig3 fig5 fig6 fig56 fig7 fig8\n\
         \x20        topology-sweep codesign\n\
         \x20        ablate-cutoff ablate-psucc ablate-segment\n\
         \x20        ablate-protocol ablate-purification\n\
         \x20        backend-matrix analyze\n\
         \x20        ablations (all five ablations) | all (everything)"
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::TARGETS;

    #[test]
    fn table_and_artifact_registries_stay_in_sync() {
        // Every table-mode target must have a JSON artifact and vice
        // versa — a name added to one registry but not the other would
        // work in one --format and error in the other.
        let table: Vec<&str> = TARGETS.iter().map(|(n, _)| *n).collect();
        let json = dqc_bench::target_names();
        assert_eq!(table, json, "repro TARGETS vs dqc_bench::target_names()");
    }
}
