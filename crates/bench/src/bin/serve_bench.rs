//! Load-test harness for the `dqc-serve` serving layer.
//!
//! ```text
//! serve-bench [--mode closed|open] [--requests N] [--concurrency C]
//!             [--rate RPS] [--workers W] [--queue Q] [--cache K]
//!             [--batch B] [--runs R] [--seed S] [--out DIR]
//!             [--min-speedup X] [--fail-on-reject]
//! ```
//!
//! Drives a [`dqc_serve::Server`] with the mixed QAOA/QFT/GHZ portfolio
//! ([`dqc_bench::serve_portfolio`]) in one of two client models:
//!
//! * **closed-loop** (default) — a fixed number of in-flight requests
//!   (`--concurrency`); a new request is submitted the moment a response
//!   arrives. Measures peak sustainable throughput.
//! * **open-loop** — requests arrive at a fixed rate (`--rate`/s)
//!   regardless of completions, the model of external traffic. Overload
//!   shows up as typed `Overloaded` rejections, counted in the artifact.
//!
//! Every run also times the **no-cache, single-worker baseline**: the
//! same request list served sequentially with one fresh compilation per
//! request — the cost profile of a service without the warm compile
//! cache or worker pool. The ratio is the artifact's
//! `throughput_speedup`; `--min-speedup` turns it into a gate.
//!
//! Results are written as `BENCH_SERVE.json` in a stable, schema-versioned
//! layout; the CI `serve-smoke` job runs a small closed-loop load with
//! `--fail-on-reject --min-speedup 4` and uploads the artifact.

use dqc_core::{Design, SystemConfig};
use dqc_serve::{EvalRequest, ServeBuilder, ServeError, Server};
use dqc_types::Json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Name of the emitted artifact.
const BENCH_ID: &str = "BENCH_SERVE";

/// Schema version of the serve-bench artifact.
const SCHEMA_VERSION: i64 = 1;

/// Client model of the load generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }
}

/// Everything one invocation is configured with.
struct Options {
    mode: Mode,
    requests: usize,
    concurrency: usize,
    rate_rps: f64,
    workers: usize,
    queue: usize,
    cache: usize,
    batch: usize,
    runs: usize,
    seed: u64,
    out_dir: PathBuf,
    min_speedup: Option<f64>,
    fail_on_reject: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            mode: Mode::Closed,
            requests: 120,
            concurrency: 16,
            rate_rps: 200.0,
            workers: 4,
            queue: 64,
            cache: 32,
            batch: 8,
            runs: 2,
            seed: dqc_bench::BASE_SEED,
            out_dir: PathBuf::from("."),
            min_speedup: None,
            fail_on_reject: false,
        }
    }
}

/// The fixed request list of one run: the portfolio tiled round-robin
/// with alternating designs and per-request seed offsets, so every
/// request is distinct but the whole list is a pure function of
/// (`requests`, `runs`, `seed`).
fn build_requests(opts: &Options) -> Vec<EvalRequest> {
    dqc_bench::portfolio_requests(
        opts.requests,
        opts.runs,
        opts.seed,
        "paper",
        &[Design::AdaptBuf, Design::AsyncBuf],
    )
}

/// What one timed client run produced.
struct RunOutcome {
    elapsed: Duration,
    completed: usize,
    rejected: usize,
    errors: usize,
    stats: dqc_serve::ServeStats,
}

fn spawn_server(opts: &Options) -> Result<(Server, Receiver<dqc_serve::EvalResponse>), ServeError> {
    ServeBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(opts.workers)
        .queue_capacity(opts.queue)
        .cache_capacity(opts.cache)
        .batch_max(opts.batch)
        .spawn()
}

/// Closed loop: keep exactly `concurrency` requests in flight (`main`
/// has already clamped it to the queue capacity, so the artifact
/// reports the concurrency that actually ran).
fn run_closed(opts: &Options, requests: Vec<EvalRequest>) -> Result<RunOutcome, ServeError> {
    let (server, responses) = spawn_server(opts)?;
    let started = Instant::now();
    let (completed, errors) =
        dqc_bench::pump_closed_loop(&server, &responses, requests, opts.concurrency)?;
    let elapsed = started.elapsed();
    Ok(RunOutcome {
        elapsed,
        completed,
        rejected: 0,
        errors,
        stats: server.shutdown(),
    })
}

/// Open loop: submit at a fixed rate; a full queue rejects (and the
/// rejection is the datum).
fn run_open(opts: &Options, requests: Vec<EvalRequest>) -> Result<RunOutcome, ServeError> {
    let (server, responses) = spawn_server(opts)?;
    let started = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / opts.rate_rps.max(1e-6));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for (i, request) in requests.into_iter().enumerate() {
        let due = started + interval * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match server.submit(request) {
            Ok(_) => accepted += 1,
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => return Err(e),
        }
    }
    let mut errors = 0usize;
    for _ in 0..accepted {
        let response = responses.recv().expect("server streams responses");
        errors += usize::from(response.outcome.is_err());
    }
    let elapsed = started.elapsed();
    Ok(RunOutcome {
        elapsed,
        completed: accepted,
        rejected,
        errors,
        stats: server.shutdown(),
    })
}

/// The no-cache, single-worker baseline: the same request list served
/// sequentially through the shared reference loop.
fn run_baseline(requests: &[EvalRequest]) -> Result<Duration, ServeError> {
    let config = SystemConfig::paper_two_node_32();
    let started = Instant::now();
    dqc_bench::run_sequential_baseline(requests, &config)?;
    Ok(started.elapsed())
}

fn rps(count: usize, elapsed: Duration) -> f64 {
    if elapsed.as_secs_f64() > 0.0 {
        count as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    }
}

/// Serializes one run into the stable `BENCH_SERVE.json` schema.
fn to_json(opts: &Options, outcome: &RunOutcome, baseline_elapsed: Duration, speedup: f64) -> Json {
    let portfolio: Vec<Json> = dqc_bench::serve_portfolio()
        .iter()
        .map(|(label, _)| Json::from(label.as_str()))
        .collect();
    Json::object([
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("bench", Json::from(BENCH_ID)),
        ("mode", Json::from(opts.mode.name())),
        ("requests", Json::from(opts.requests)),
        ("concurrency", Json::from(opts.concurrency)),
        ("rate_rps", Json::float(opts.rate_rps)),
        ("workers_per_shard", Json::from(opts.workers)),
        ("queue_capacity", Json::from(opts.queue)),
        ("cache_capacity", Json::from(opts.cache)),
        ("batch_max", Json::from(opts.batch)),
        ("runs", Json::from(opts.runs)),
        ("seed", Json::uint(opts.seed)),
        ("portfolio", Json::Array(portfolio)),
        (
            "serve",
            Json::object([
                (
                    "elapsed_ms",
                    Json::float(outcome.elapsed.as_secs_f64() * 1e3),
                ),
                ("completed", Json::from(outcome.completed)),
                ("rejected", Json::from(outcome.rejected)),
                ("errors", Json::from(outcome.errors)),
                (
                    "throughput_rps",
                    Json::float(rps(outcome.completed, outcome.elapsed)),
                ),
                ("stats", outcome.stats.to_json()),
            ]),
        ),
        (
            "baseline",
            Json::object([
                (
                    "elapsed_ms",
                    Json::float(baseline_elapsed.as_secs_f64() * 1e3),
                ),
                (
                    "throughput_rps",
                    Json::float(rps(opts.requests, baseline_elapsed)),
                ),
            ]),
        ),
        (
            "derived",
            Json::object([("throughput_speedup", Json::float(speedup))]),
        ),
    ])
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut next_parsed = |what: &str| -> Result<String, ExitCode> {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(&format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--mode" => match next_parsed("closed|open") {
                Ok(v) if v == "closed" => opts.mode = Mode::Closed,
                Ok(v) if v == "open" => opts.mode = Mode::Open,
                Ok(v) => return usage(&format!("unknown mode {v}")),
                Err(code) => return code,
            },
            "--requests" | "--concurrency" | "--workers" | "--queue" | "--cache" | "--batch"
            | "--runs" => {
                let value = match next_parsed("a count") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let Ok(n) = value.parse::<usize>() else {
                    return usage(&format!("{arg} needs a count, got {value}"));
                };
                match arg.as_str() {
                    "--requests" => opts.requests = n,
                    "--concurrency" => opts.concurrency = n,
                    "--workers" => opts.workers = n,
                    "--queue" => opts.queue = n,
                    "--cache" => opts.cache = n,
                    "--batch" => opts.batch = n,
                    _ => opts.runs = n,
                }
            }
            "--rate" => match next_parsed("requests/sec").map(|v| v.parse::<f64>()) {
                Ok(Ok(r)) if r > 0.0 => opts.rate_rps = r,
                Ok(_) => return usage("--rate needs a positive number"),
                Err(code) => return code,
            },
            "--seed" => match next_parsed("an integer").map(|v| v.parse::<u64>()) {
                Ok(Ok(s)) => opts.seed = s,
                Ok(_) => return usage("--seed needs an integer"),
                Err(code) => return code,
            },
            "--min-speedup" => match next_parsed("a ratio").map(|v| v.parse::<f64>()) {
                Ok(Ok(x)) if x > 0.0 => opts.min_speedup = Some(x),
                Ok(_) => return usage("--min-speedup needs a positive number"),
                Err(code) => return code,
            },
            "--out" => match next_parsed("a directory") {
                Ok(dir) => opts.out_dir = PathBuf::from(dir),
                Err(code) => return code,
            },
            "--fail-on-reject" => opts.fail_on_reject = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    if opts.requests == 0 || opts.runs == 0 {
        return usage("--requests and --runs must be at least 1");
    }
    // A closed-loop window deeper than the queue cannot actually be held
    // in flight; clamp *before* anything is recorded so the artifact
    // reports the concurrency that really ran.
    let effective = opts.concurrency.clamp(1, opts.queue);
    if effective != opts.concurrency {
        eprintln!(
            "note: clamping --concurrency {} to the queue capacity {}",
            opts.concurrency, opts.queue
        );
        opts.concurrency = effective;
    }

    let requests = build_requests(&opts);
    eprintln!(
        "serve-bench: {} mode, {} requests x {} runs over {} circuits \
         ({} workers, queue {}, cache {}, batch {})",
        opts.mode.name(),
        opts.requests,
        opts.runs,
        dqc_bench::serve_portfolio().len(),
        opts.workers,
        opts.queue,
        opts.cache,
        opts.batch,
    );

    let outcome = match opts.mode {
        Mode::Closed => run_closed(&opts, requests.clone()),
        Mode::Open => run_open(&opts, requests.clone()),
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: serving failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_elapsed = match run_baseline(&requests) {
        Ok(elapsed) => elapsed,
        Err(e) => {
            eprintln!("error: baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let serve_rps = rps(outcome.completed, outcome.elapsed);
    let baseline_rps = rps(opts.requests, baseline_elapsed);
    let speedup = if baseline_rps > 0.0 {
        serve_rps / baseline_rps
    } else {
        0.0
    };

    println!("{BENCH_ID} ({} mode):", opts.mode.name());
    println!(
        "  served     {:>6} requests in {:>9.1} ms  ({:>8.1} req/s, {} rejected, {} errors)",
        outcome.completed,
        outcome.elapsed.as_secs_f64() * 1e3,
        serve_rps,
        outcome.rejected,
        outcome.errors,
    );
    println!(
        "  baseline   {:>6} requests in {:>9.1} ms  ({:>8.1} req/s, no cache, 1 worker)",
        opts.requests,
        baseline_elapsed.as_secs_f64() * 1e3,
        baseline_rps,
    );
    println!(
        "  speedup    {speedup:>8.1}x   cache {} hits / {} misses   p50 {:.2} ms  p99 {:.2} ms",
        outcome.stats.cache_hits,
        outcome.stats.cache_misses,
        outcome.stats.latency.p50_ms,
        outcome.stats.latency.p99_ms,
    );

    let document = to_json(&opts, &outcome, baseline_elapsed, speedup);
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = opts.out_dir.join(format!("{BENCH_ID}.json"));
    if let Err(e) = std::fs::write(&path, document.to_pretty_string()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    let mut failed = false;
    if opts.fail_on_reject && outcome.rejected > 0 {
        eprintln!(
            "FAIL: {} requests rejected as Overloaded at this load",
            outcome.rejected
        );
        failed = true;
    }
    // Engine errors fail unconditionally: an errored request completes
    // near-instantly, so any throughput (and any speedup gate) computed
    // over failures would certify garbage.
    if outcome.errors > 0 {
        eprintln!("FAIL: {} requests ended in engine errors", outcome.errors);
        failed = true;
    }
    if let Some(min) = opts.min_speedup {
        if speedup < min {
            eprintln!("FAIL: throughput speedup {speedup:.1}x below the {min}x gate");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: serve-bench [--mode closed|open] [--requests N] [--concurrency C]\n\
         \x20                  [--rate RPS] [--workers W] [--queue Q] [--cache K]\n\
         \x20                  [--batch B] [--runs R] [--seed S] [--out DIR]\n\
         \x20                  [--min-speedup X] [--fail-on-reject]\n\
         Load-tests the dqc-serve layer on the mixed QAOA/QFT/GHZ portfolio and\n\
         writes {BENCH_ID}.json; closed loop holds C requests in flight, open\n\
         loop submits at a fixed rate and counts Overloaded rejections."
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
