//! Load-test harness for the `dqc-serve` serving layer.
//!
//! ```text
//! serve-bench [--mode closed|open] [--requests N] [--concurrency C]
//!             [--rate RPS] [--workers W] [--queue Q] [--cache K]
//!             [--batch B] [--runs R] [--seed S] [--out DIR]
//!             [--min-speedup X] [--fail-on-reject]
//!             [--wire] [--connect ADDR] [--verify-wire]
//!             [--max-wire-overhead X]
//!             [--skew] [--min-fused-speedup X]
//!             [--load-step] [--max-p99-ratio X]
//!             [--profile DIR]
//! ```
//!
//! Drives a [`dqc_serve::Server`] with the mixed QAOA/QFT/GHZ portfolio
//! ([`dqc_bench::serve_portfolio`]) in one of two client models:
//!
//! * **closed-loop** (default) — a fixed number of in-flight requests
//!   (`--concurrency`); a new request is submitted the moment a response
//!   arrives. Measures peak sustainable throughput.
//! * **open-loop** — requests arrive at a fixed rate (`--rate`/s)
//!   regardless of completions, the model of external traffic. Overload
//!   shows up as typed `Overloaded` rejections, counted in the artifact.
//!
//! Every run also times the **no-cache, single-worker baseline**: the
//! same request list served sequentially with one fresh compilation per
//! request — the cost profile of a service without the warm compile
//! cache or worker pool. The ratio is the artifact's
//! `throughput_speedup`; `--min-speedup` turns it into a gate.
//!
//! With `--wire` the same closed-loop request list additionally runs
//! through a `dqc-served` daemon over loopback TCP (spawned in-process,
//! or an external one named by `--connect ADDR`), driven by the blocking
//! [`dqc_served::ServedClient`] through the same canonical closed-loop
//! pump. The artifact gains a `wire` section and a derived
//! `wire_overhead` ratio (in-process throughput / wire throughput);
//! `--max-wire-overhead` gates it, and `--verify-wire` first pins one
//! portfolio pass — structured JSON *and* QASM text — byte-identical
//! against direct in-process evaluation.
//!
//! With `--skew` the duplicate-heavy portfolio
//! ([`dqc_bench::skewed_requests`]) is additionally served twice on a
//! single worker — once with cross-request replay fusion on, once off —
//! and the artifact gains a `skew` section plus a derived
//! `fused_speedup` ratio; `--min-fused-speedup` gates it. With
//! `--load-step` the migrating-hot-spot traffic
//! ([`dqc_bench::migrating_requests`]) runs against a two-shard server
//! twice — once with the queue-pressure autoscaler steering a shared
//! worker budget, once with the same budget frozen in an even static
//! split — and the artifact gains a `load_step` section plus a derived
//! `p99_ratio` (autoscaled p99 / static p99); `--max-p99-ratio` gates
//! it.
//!
//! With `--profile DIR` a dedicated quick scenario additionally runs
//! with a span recorder and the monotonic clock installed — the only
//! pass that records; the timed measurements above always run with
//! recording off — and writes the resulting schema-versioned
//! [`dqc_obs::Capture`] (span tree, events, metrics snapshot) to
//! `DIR/profile_serve.json`, readable by `dqc-obs report`.
//!
//! Results are written as `BENCH_SERVE.json` in a stable, schema-versioned
//! layout; the CI `serve-smoke` job runs a small closed-loop load with
//! `--fail-on-reject --min-speedup 4` plus gated `--skew` and
//! `--load-step` passes, the `served-smoke` job adds `--wire
//! --verify-wire` against a daemon subprocess, and both upload the
//! artifact.

use dqc_core::{Design, Experiment, SystemConfig};
use dqc_serve::{EvalRequest, ServeBuilder, ServeError, Server};
use dqc_served::{ServedBuilder, ServedClient, Submission};
use dqc_types::Json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Name of the emitted artifact.
const BENCH_ID: &str = "BENCH_SERVE";

/// Schema version of the serve-bench artifact. Version 2 added the
/// `wire` section and `derived.wire_overhead` (both `null` unless
/// `--wire` ran). Version 3 added the `skew` section with
/// `derived.fused_speedup` (`--skew`) and the `load_step` section with
/// `derived.p99_ratio` (`--load-step`), all `null` unless their
/// scenario ran.
const SCHEMA_VERSION: i64 = 3;

/// Client model of the load generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }
}

/// Everything one invocation is configured with.
struct Options {
    mode: Mode,
    requests: usize,
    concurrency: usize,
    rate_rps: f64,
    workers: usize,
    queue: usize,
    cache: usize,
    batch: usize,
    runs: usize,
    seed: u64,
    out_dir: PathBuf,
    min_speedup: Option<f64>,
    fail_on_reject: bool,
    wire: bool,
    connect: Option<String>,
    verify_wire: bool,
    max_wire_overhead: Option<f64>,
    skew: bool,
    min_fused_speedup: Option<f64>,
    load_step: bool,
    max_p99_ratio: Option<f64>,
    profile: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            mode: Mode::Closed,
            requests: 120,
            concurrency: 16,
            rate_rps: 200.0,
            workers: 4,
            queue: 64,
            cache: 32,
            batch: 8,
            runs: 2,
            seed: dqc_bench::BASE_SEED,
            out_dir: PathBuf::from("."),
            min_speedup: None,
            fail_on_reject: false,
            wire: false,
            connect: None,
            verify_wire: false,
            max_wire_overhead: None,
            skew: false,
            min_fused_speedup: None,
            load_step: false,
            max_p99_ratio: None,
            profile: None,
        }
    }
}

/// The fixed request list of one run: the portfolio tiled round-robin
/// with alternating designs and per-request seed offsets, so every
/// request is distinct but the whole list is a pure function of
/// (`requests`, `runs`, `seed`).
fn build_requests(opts: &Options) -> Vec<EvalRequest> {
    dqc_bench::portfolio_requests(
        opts.requests,
        opts.runs,
        opts.seed,
        "paper",
        &[Design::AdaptBuf, Design::AsyncBuf],
    )
}

/// What one timed client run produced.
struct RunOutcome {
    elapsed: Duration,
    completed: usize,
    rejected: usize,
    errors: usize,
    stats: dqc_serve::ServeStats,
}

fn spawn_server(opts: &Options) -> Result<(Server, Receiver<dqc_serve::EvalResponse>), ServeError> {
    ServeBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(opts.workers)
        .queue_capacity(opts.queue)
        .cache_capacity(opts.cache)
        .batch_max(opts.batch)
        .spawn()
}

/// Closed loop: keep exactly `concurrency` requests in flight (`main`
/// has already clamped it to the queue capacity, so the artifact
/// reports the concurrency that actually ran).
fn run_closed(opts: &Options, requests: Vec<EvalRequest>) -> Result<RunOutcome, ServeError> {
    let (server, responses) = spawn_server(opts)?;
    let started = Instant::now();
    let (completed, errors) =
        dqc_bench::pump_closed_loop(&server, &responses, requests, opts.concurrency)?;
    let elapsed = started.elapsed();
    Ok(RunOutcome {
        elapsed,
        completed,
        rejected: 0,
        errors,
        stats: server.shutdown().serve,
    })
}

/// Open loop: submit at a fixed rate; a full queue rejects (and the
/// rejection is the datum).
fn run_open(opts: &Options, requests: Vec<EvalRequest>) -> Result<RunOutcome, ServeError> {
    let (server, responses) = spawn_server(opts)?;
    let started = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / opts.rate_rps.max(1e-6));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for (i, request) in requests.into_iter().enumerate() {
        let due = started + interval * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match server.submit(request) {
            Ok(_) => accepted += 1,
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => return Err(e),
        }
    }
    let mut errors = 0usize;
    for _ in 0..accepted {
        let response = responses.recv().expect("server streams responses");
        errors += usize::from(response.outcome.is_err());
    }
    let elapsed = started.elapsed();
    Ok(RunOutcome {
        elapsed,
        completed: accepted,
        rejected,
        errors,
        stats: server.shutdown().serve,
    })
}

/// What one timed wire run produced.
struct WireOutcome {
    elapsed: Duration,
    completed: usize,
    rejected: usize,
    errors: usize,
    verified: usize,
    serve_stats: dqc_serve::ServeStats,
    daemon_stats: dqc_served::DaemonStats,
}

/// Pins one portfolio pass byte-identical across the wire: each request
/// is evaluated directly in-process and then submitted over TCP twice —
/// once as structured JSON, once as OpenQASM text — and every per-seed
/// report must serialize to the exact same compact JSON.
fn verify_wire(addr: &str, requests: &[EvalRequest]) -> Result<usize, String> {
    let config = SystemConfig::paper_two_node_32();
    let mut client = ServedClient::connect(addr, "serve-bench-verify")
        .map_err(|e| format!("verify connect failed: {e}"))?;
    for request in requests {
        let direct = Experiment::new(&request.circuit, &config)
            .map_err(|e| format!("direct compile failed: {e}"))?
            .design(request.design)
            .runs(request.runs)
            .base_seed(request.base_seed)
            .reports()
            .map_err(|e| format!("direct evaluation failed: {e}"))?;
        let expected: Vec<String> = direct
            .iter()
            .map(|r| r.to_json().to_compact_string())
            .collect();
        for (format, submission) in [
            ("json", Submission::from_request(request)),
            (
                "qasm",
                Submission::qasm(
                    request.circuit_label.clone(),
                    dqc_circuit::to_qasm(&request.circuit),
                    request.point.clone(),
                    request.design,
                )
                .runs(request.runs)
                .base_seed(request.base_seed),
            ),
        ] {
            let tag = client
                .submit(&submission)
                .map_err(|e| format!("verify submit failed: {e}"))?;
            let reply = client
                .recv_reply()
                .map_err(|e| format!("verify reply failed: {e}"))?;
            if reply.tag != tag {
                return Err(format!("verify reply tag {} != {tag}", reply.tag));
            }
            let output = reply
                .outcome
                .map_err(|e| format!("verify request refused ({format}): {e}"))?;
            let got: Vec<String> = output
                .reports
                .iter()
                .map(|r| r.to_json().to_compact_string())
                .collect();
            if got != expected {
                return Err(format!(
                    "wire reports for {} ({format} path) differ from direct evaluation",
                    request.circuit_label
                ));
            }
        }
    }
    client
        .bye()
        .map_err(|e| format!("verify bye failed: {e}"))?;
    Ok(requests.len())
}

/// The wire measurement: the identical closed-loop request list, but
/// every request crosses the TCP frame protocol. Spawns a loopback
/// daemon with the same serving knobs unless `--connect` named one.
fn run_wire(opts: &Options, requests: Vec<EvalRequest>) -> Result<WireOutcome, String> {
    let local = if opts.connect.is_some() {
        None
    } else {
        let daemon = ServedBuilder::new()
            .hardware_point("paper", SystemConfig::paper_two_node_32())
            .workers_per_shard(opts.workers)
            .queue_capacity(opts.queue)
            .cache_capacity(opts.cache)
            .batch_max(opts.batch)
            .bind("127.0.0.1:0")
            .map_err(|e| format!("daemon failed to start: {e}"))?;
        Some(daemon)
    };
    let addr = match (&opts.connect, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(daemon)) => daemon.local_addr().to_string(),
        (None, None) => unreachable!("local daemon spawned when not connecting"),
    };

    let verified = if opts.verify_wire {
        // One full portfolio pass, both circuit formats.
        let pass = dqc_bench::portfolio_requests(
            dqc_bench::serve_portfolio().len(),
            opts.runs,
            opts.seed,
            "paper",
            &[Design::AdaptBuf, Design::AsyncBuf],
        );
        verify_wire(&addr, &pass)?
    } else {
        0
    };

    let mut client = ServedClient::connect(addr.as_str(), "serve-bench")
        .map_err(|e| format!("wire connect failed: {e}"))?;
    let started = Instant::now();
    let (completed, rejected, errors) =
        dqc_bench::pump_closed_loop_wire(&mut client, requests, opts.concurrency, false)
            .map_err(|e| format!("wire run failed: {e}"))?;
    let elapsed = started.elapsed();
    let (serve_stats, daemon_stats) = client
        .stats()
        .map_err(|e| format!("wire stats failed: {e}"))?;
    client.bye().map_err(|e| format!("wire bye failed: {e}"))?;
    if let Some(daemon) = local {
        daemon.shutdown();
    }
    Ok(WireOutcome {
        elapsed,
        completed,
        rejected,
        errors,
        verified,
        serve_stats,
        daemon_stats,
    })
}

/// What the fusion comparison produced: the same duplicate-heavy
/// request list served on one worker with replay fusion on and off.
struct SkewOutcome {
    fused_elapsed: Duration,
    unfused_elapsed: Duration,
    fused_stats: dqc_serve::ServeStats,
}

/// The `--skew` scenario. One worker and a deep closed-loop window force
/// multi-request batches, so the duplicate-heavy list actually coalesces;
/// fusion is the only knob that differs between the two runs, and the
/// fused run's byte-identity to the unfused one is pinned separately by
/// the workspace's determinism tests. A warmup pass compiles every
/// portfolio circuit before the clock starts, so the comparison times
/// the replays fusion deduplicates, not the cold compiles both sides
/// pay identically.
fn run_skew(opts: &Options) -> Result<SkewOutcome, ServeError> {
    let requests = dqc_bench::skewed_requests(opts.requests, opts.runs, opts.seed, "paper", 4);
    let warmup = dqc_bench::portfolio_requests(
        dqc_bench::serve_portfolio().len(),
        1,
        opts.seed,
        "paper",
        &[Design::AdaptBuf, Design::AsyncBuf],
    );
    let mut timings = [Duration::ZERO; 2];
    let mut fused_stats = None;
    for (slot, fusion) in [(0, true), (1, false)] {
        let (server, responses) = ServeBuilder::new()
            .hardware_point("paper", SystemConfig::paper_two_node_32())
            .workers_per_shard(1)
            .queue_capacity(opts.queue)
            .cache_capacity(opts.cache)
            .batch_max(opts.batch)
            .fusion(fusion)
            .spawn()?;
        let window = opts.concurrency.clamp(1, opts.queue);
        dqc_bench::pump_closed_loop(&server, &responses, warmup.clone(), window)?;
        let started = Instant::now();
        dqc_bench::pump_closed_loop(&server, &responses, requests.clone(), window)?;
        timings[slot] = started.elapsed();
        let stats = server.shutdown().serve;
        if fusion {
            fused_stats = Some(stats);
        }
    }
    Ok(SkewOutcome {
        fused_elapsed: timings[0],
        unfused_elapsed: timings[1],
        fused_stats: fused_stats.expect("the fused pass ran"),
    })
}

/// What the autoscale comparison produced: the migrating-hot-spot list
/// served by an autoscaled worker budget and by the same budget frozen
/// in an even static split.
struct LoadStepOutcome {
    autoscaled_elapsed: Duration,
    static_elapsed: Duration,
    autoscaled_stats: dqc_serve::ServeStats,
    static_stats: dqc_serve::ServeStats,
    placement: Vec<dqc_serve::WorkerPlacement>,
}

/// The `--load-step` scenario: two equal shards (`east`/`west`), traffic
/// skewed 3:1 toward `east` for the first half of the list and toward
/// `west` for the second. The autoscaled run gets `--workers` as a
/// *total* budget plus a fast-tick policy; the static run splits the
/// same budget evenly and can never follow the hot spot. The queue is
/// sized to the closed-loop window so the 3:1 skew actually shows up as
/// queue pressure the controller can see.
fn run_load_step(opts: &Options) -> Result<LoadStepOutcome, ServeError> {
    let budget = opts.workers.max(2);
    let window = opts.concurrency.max(8);
    let requests =
        dqc_bench::migrating_requests(opts.requests, opts.runs, opts.seed, ("east", "west"), 4);
    let mut outcomes = Vec::new();
    for autoscale in [true, false] {
        let mut builder = ServeBuilder::new()
            .hardware_point("east", SystemConfig::paper_two_node_32())
            .hardware_point("west", SystemConfig::paper_two_node_32())
            .queue_capacity(window)
            .cache_capacity(opts.cache)
            .batch_max(opts.batch);
        if autoscale {
            builder = builder
                .worker_budget(budget)
                .autoscale(dqc_serve::AutoscalePolicy {
                    tick_ms: 5,
                    // The majority shard queues ~3/4 of the window, the
                    // minority ~1/4: thresholds either side of those.
                    hot_fraction: 0.5,
                    cold_fraction: 0.3,
                    ..dqc_serve::AutoscalePolicy::default()
                });
        } else {
            builder = builder.workers_per_shard(budget / 2);
        }
        let (server, responses) = builder.spawn()?;
        let started = Instant::now();
        dqc_bench::pump_closed_loop(&server, &responses, requests.clone(), window)?;
        let elapsed = started.elapsed();
        let report = server.shutdown();
        outcomes.push((elapsed, report));
    }
    let (static_elapsed, static_report) = outcomes.pop().expect("static pass ran");
    let (autoscaled_elapsed, autoscaled_report) = outcomes.pop().expect("autoscaled pass ran");
    Ok(LoadStepOutcome {
        autoscaled_elapsed,
        static_elapsed,
        autoscaled_stats: autoscaled_report.serve,
        static_stats: static_report.serve,
        placement: autoscaled_report.placement,
    })
}

/// The `--profile` scenario: one small closed-loop pass with a ring
/// recorder and the monotonic clock installed, so the capture covers
/// the full compile → queue → dispatch → replay span tree of every
/// request. Deliberately separate from the timed measurements (which
/// always run with recording off) so profiling overhead never skews a
/// reported throughput or gates a CI ratio.
fn run_profile(opts: &Options, dir: &std::path::Path) -> Result<PathBuf, String> {
    // Enough ring capacity that no span of the small pass falls off.
    let ring = std::sync::Arc::new(dqc_obs::RingRecorder::new(65_536));
    let session = dqc_obs::install(
        ring.clone(),
        std::sync::Arc::new(dqc_obs::MonotonicClock::new()),
    );
    let profile_opts = Options {
        requests: opts.requests.clamp(1, 24),
        ..Options::default()
    };
    let requests = build_requests(&profile_opts);
    let (server, responses) =
        spawn_server(&profile_opts).map_err(|e| format!("profile server failed: {e}"))?;
    dqc_bench::pump_closed_loop(&server, &responses, requests, profile_opts.concurrency)
        .map_err(|e| format!("profile run failed: {e}"))?;
    let metrics = server.metrics();
    server.shutdown();
    drop(session);
    let capture = dqc_obs::Capture::from_ring("serve-bench", "monotonic", &ring, metrics);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("profile_serve.json");
    std::fs::write(&path, capture.to_json().to_pretty_string())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// The no-cache, single-worker baseline: the same request list served
/// sequentially through the shared reference loop.
fn run_baseline(requests: &[EvalRequest]) -> Result<Duration, ServeError> {
    let config = SystemConfig::paper_two_node_32();
    let started = Instant::now();
    dqc_bench::run_sequential_baseline(requests, &config)?;
    Ok(started.elapsed())
}

fn rps(count: usize, elapsed: Duration) -> f64 {
    if elapsed.as_secs_f64() > 0.0 {
        count as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    }
}

/// The `wire` section of the artifact (`null` when `--wire` didn't run).
fn wire_to_json(wire: Option<&WireOutcome>) -> Json {
    let Some(wire) = wire else {
        return Json::Null;
    };
    Json::object([
        ("elapsed_ms", Json::float(wire.elapsed.as_secs_f64() * 1e3)),
        ("completed", Json::from(wire.completed)),
        ("rejected", Json::from(wire.rejected)),
        ("errors", Json::from(wire.errors)),
        ("verified", Json::from(wire.verified)),
        (
            "throughput_rps",
            Json::float(rps(wire.completed, wire.elapsed)),
        ),
        ("stats", wire.serve_stats.to_json()),
        ("daemon", wire.daemon_stats.to_json()),
    ])
}

/// The `skew` section of the artifact (`null` when `--skew` didn't run).
fn skew_to_json(skew: Option<&SkewOutcome>, fused_speedup: Option<f64>) -> Json {
    let Some(skew) = skew else {
        return Json::Null;
    };
    Json::object([
        (
            "fused_elapsed_ms",
            Json::float(skew.fused_elapsed.as_secs_f64() * 1e3),
        ),
        (
            "unfused_elapsed_ms",
            Json::float(skew.unfused_elapsed.as_secs_f64() * 1e3),
        ),
        (
            "fused_requests",
            Json::uint(skew.fused_stats.fused_requests),
        ),
        (
            "fused_replays_saved",
            Json::uint(skew.fused_stats.fused_replays_saved),
        ),
        (
            "fused_speedup",
            fused_speedup.map(Json::float).unwrap_or(Json::Null),
        ),
    ])
}

/// The `load_step` section of the artifact (`null` when `--load-step`
/// didn't run).
fn load_step_to_json(load_step: Option<&LoadStepOutcome>, p99_ratio: Option<f64>) -> Json {
    let Some(step) = load_step else {
        return Json::Null;
    };
    Json::object([
        (
            "autoscaled_elapsed_ms",
            Json::float(step.autoscaled_elapsed.as_secs_f64() * 1e3),
        ),
        (
            "static_elapsed_ms",
            Json::float(step.static_elapsed.as_secs_f64() * 1e3),
        ),
        (
            "autoscaled_p99_ms",
            Json::float(step.autoscaled_stats.latency.p99_ms),
        ),
        (
            "static_p99_ms",
            Json::float(step.static_stats.latency.p99_ms),
        ),
        (
            "autoscale_ticks",
            Json::uint(step.autoscaled_stats.autoscale_ticks),
        ),
        ("rebalances", Json::uint(step.autoscaled_stats.rebalances)),
        (
            "placement",
            Json::Array(
                step.placement
                    .iter()
                    .map(dqc_serve::WorkerPlacement::to_json)
                    .collect(),
            ),
        ),
        (
            "p99_ratio",
            p99_ratio.map(Json::float).unwrap_or(Json::Null),
        ),
    ])
}

/// Serializes one run into the stable `BENCH_SERVE.json` schema.
#[allow(clippy::too_many_arguments)]
fn to_json(
    opts: &Options,
    outcome: &RunOutcome,
    baseline_elapsed: Duration,
    speedup: f64,
    wire: Option<&WireOutcome>,
    wire_overhead: Option<f64>,
    skew: Option<&SkewOutcome>,
    fused_speedup: Option<f64>,
    load_step: Option<&LoadStepOutcome>,
    p99_ratio: Option<f64>,
) -> Json {
    let portfolio: Vec<Json> = dqc_bench::serve_portfolio()
        .iter()
        .map(|(label, _)| Json::from(label.as_str()))
        .collect();
    Json::object([
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("bench", Json::from(BENCH_ID)),
        ("mode", Json::from(opts.mode.name())),
        ("requests", Json::from(opts.requests)),
        ("concurrency", Json::from(opts.concurrency)),
        ("rate_rps", Json::float(opts.rate_rps)),
        ("workers_per_shard", Json::from(opts.workers)),
        ("queue_capacity", Json::from(opts.queue)),
        ("cache_capacity", Json::from(opts.cache)),
        ("batch_max", Json::from(opts.batch)),
        ("runs", Json::from(opts.runs)),
        ("seed", Json::uint(opts.seed)),
        ("portfolio", Json::Array(portfolio)),
        (
            "serve",
            Json::object([
                (
                    "elapsed_ms",
                    Json::float(outcome.elapsed.as_secs_f64() * 1e3),
                ),
                ("completed", Json::from(outcome.completed)),
                ("rejected", Json::from(outcome.rejected)),
                ("errors", Json::from(outcome.errors)),
                (
                    "throughput_rps",
                    Json::float(rps(outcome.completed, outcome.elapsed)),
                ),
                ("stats", outcome.stats.to_json()),
            ]),
        ),
        (
            "baseline",
            Json::object([
                (
                    "elapsed_ms",
                    Json::float(baseline_elapsed.as_secs_f64() * 1e3),
                ),
                (
                    "throughput_rps",
                    Json::float(rps(opts.requests, baseline_elapsed)),
                ),
            ]),
        ),
        ("wire", wire_to_json(wire)),
        ("skew", skew_to_json(skew, fused_speedup)),
        ("load_step", load_step_to_json(load_step, p99_ratio)),
        (
            "derived",
            Json::object([
                ("throughput_speedup", Json::float(speedup)),
                (
                    "wire_overhead",
                    wire_overhead.map(Json::float).unwrap_or(Json::Null),
                ),
                (
                    "fused_speedup",
                    fused_speedup.map(Json::float).unwrap_or(Json::Null),
                ),
                (
                    "p99_ratio",
                    p99_ratio.map(Json::float).unwrap_or(Json::Null),
                ),
            ]),
        ),
    ])
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut next_parsed = |what: &str| -> Result<String, ExitCode> {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(&format!("{arg} needs {what}")))
        };
        match arg.as_str() {
            "--mode" => match next_parsed("closed|open") {
                Ok(v) if v == "closed" => opts.mode = Mode::Closed,
                Ok(v) if v == "open" => opts.mode = Mode::Open,
                Ok(v) => return usage(&format!("unknown mode {v}")),
                Err(code) => return code,
            },
            "--requests" | "--concurrency" | "--workers" | "--queue" | "--cache" | "--batch"
            | "--runs" => {
                let value = match next_parsed("a count") {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let Ok(n) = value.parse::<usize>() else {
                    return usage(&format!("{arg} needs a count, got {value}"));
                };
                match arg.as_str() {
                    "--requests" => opts.requests = n,
                    "--concurrency" => opts.concurrency = n,
                    "--workers" => opts.workers = n,
                    "--queue" => opts.queue = n,
                    "--cache" => opts.cache = n,
                    "--batch" => opts.batch = n,
                    _ => opts.runs = n,
                }
            }
            "--rate" => match next_parsed("requests/sec").map(|v| v.parse::<f64>()) {
                Ok(Ok(r)) if r > 0.0 => opts.rate_rps = r,
                Ok(_) => return usage("--rate needs a positive number"),
                Err(code) => return code,
            },
            "--seed" => match next_parsed("an integer").map(|v| v.parse::<u64>()) {
                Ok(Ok(s)) => opts.seed = s,
                Ok(_) => return usage("--seed needs an integer"),
                Err(code) => return code,
            },
            "--min-speedup" => match next_parsed("a ratio").map(|v| v.parse::<f64>()) {
                Ok(Ok(x)) if x > 0.0 => opts.min_speedup = Some(x),
                Ok(_) => return usage("--min-speedup needs a positive number"),
                Err(code) => return code,
            },
            "--out" => match next_parsed("a directory") {
                Ok(dir) => opts.out_dir = PathBuf::from(dir),
                Err(code) => return code,
            },
            "--fail-on-reject" => opts.fail_on_reject = true,
            "--wire" => opts.wire = true,
            "--connect" => match next_parsed("HOST:PORT") {
                Ok(addr) => {
                    opts.connect = Some(addr);
                    opts.wire = true;
                }
                Err(code) => return code,
            },
            "--verify-wire" => {
                opts.verify_wire = true;
                opts.wire = true;
            }
            "--max-wire-overhead" => match next_parsed("a ratio").map(|v| v.parse::<f64>()) {
                Ok(Ok(x)) if x > 0.0 => {
                    opts.max_wire_overhead = Some(x);
                    opts.wire = true;
                }
                Ok(_) => return usage("--max-wire-overhead needs a positive number"),
                Err(code) => return code,
            },
            "--skew" => opts.skew = true,
            "--min-fused-speedup" => match next_parsed("a ratio").map(|v| v.parse::<f64>()) {
                Ok(Ok(x)) if x > 0.0 => {
                    opts.min_fused_speedup = Some(x);
                    opts.skew = true;
                }
                Ok(_) => return usage("--min-fused-speedup needs a positive number"),
                Err(code) => return code,
            },
            "--profile" => match next_parsed("a directory") {
                Ok(dir) => opts.profile = Some(PathBuf::from(dir)),
                Err(code) => return code,
            },
            "--load-step" => opts.load_step = true,
            "--max-p99-ratio" => match next_parsed("a ratio").map(|v| v.parse::<f64>()) {
                Ok(Ok(x)) if x > 0.0 => {
                    opts.max_p99_ratio = Some(x);
                    opts.load_step = true;
                }
                Ok(_) => return usage("--max-p99-ratio needs a positive number"),
                Err(code) => return code,
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    if opts.requests == 0 || opts.runs == 0 {
        return usage("--requests and --runs must be at least 1");
    }
    // A closed-loop window deeper than the queue cannot actually be held
    // in flight; clamp *before* anything is recorded so the artifact
    // reports the concurrency that really ran.
    let effective = opts.concurrency.clamp(1, opts.queue);
    if effective != opts.concurrency {
        eprintln!(
            "note: clamping --concurrency {} to the queue capacity {}",
            opts.concurrency, opts.queue
        );
        opts.concurrency = effective;
    }

    let requests = build_requests(&opts);
    eprintln!(
        "serve-bench: {} mode, {} requests x {} runs over {} circuits \
         ({} workers, queue {}, cache {}, batch {})",
        opts.mode.name(),
        opts.requests,
        opts.runs,
        dqc_bench::serve_portfolio().len(),
        opts.workers,
        opts.queue,
        opts.cache,
        opts.batch,
    );

    let outcome = match opts.mode {
        Mode::Closed => run_closed(&opts, requests.clone()),
        Mode::Open => run_open(&opts, requests.clone()),
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: serving failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_elapsed = match run_baseline(&requests) {
        Ok(elapsed) => elapsed,
        Err(e) => {
            eprintln!("error: baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let wire = if opts.wire {
        match run_wire(&opts, requests.clone()) {
            Ok(wire) => Some(wire),
            Err(e) => {
                eprintln!("error: wire run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let skew = if opts.skew {
        match run_skew(&opts) {
            Ok(skew) => Some(skew),
            Err(e) => {
                eprintln!("error: skew run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let load_step = if opts.load_step {
        match run_load_step(&opts) {
            Ok(step) => Some(step),
            Err(e) => {
                eprintln!("error: load-step run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if let Some(dir) = &opts.profile {
        match run_profile(&opts, dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: profile run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let serve_rps = rps(outcome.completed, outcome.elapsed);
    let baseline_rps = rps(opts.requests, baseline_elapsed);
    let speedup = if baseline_rps > 0.0 {
        serve_rps / baseline_rps
    } else {
        0.0
    };
    let wire_overhead = wire.as_ref().and_then(|wire| {
        let wire_rps = rps(wire.completed, wire.elapsed);
        (wire_rps > 0.0).then(|| serve_rps / wire_rps)
    });
    let fused_speedup = skew.as_ref().and_then(|skew| {
        let fused = skew.fused_elapsed.as_secs_f64();
        (fused > 0.0).then(|| skew.unfused_elapsed.as_secs_f64() / fused)
    });
    let p99_ratio = load_step.as_ref().and_then(|step| {
        let static_p99 = step.static_stats.latency.p99_ms;
        (static_p99 > 0.0).then(|| step.autoscaled_stats.latency.p99_ms / static_p99)
    });

    println!("{BENCH_ID} ({} mode):", opts.mode.name());
    println!(
        "  served     {:>6} requests in {:>9.1} ms  ({:>8.1} req/s, {} rejected, {} errors)",
        outcome.completed,
        outcome.elapsed.as_secs_f64() * 1e3,
        serve_rps,
        outcome.rejected,
        outcome.errors,
    );
    println!(
        "  baseline   {:>6} requests in {:>9.1} ms  ({:>8.1} req/s, no cache, 1 worker)",
        opts.requests,
        baseline_elapsed.as_secs_f64() * 1e3,
        baseline_rps,
    );
    println!(
        "  speedup    {speedup:>8.1}x   cache {} hits / {} misses   p50 {:.2} ms  p99 {:.2} ms",
        outcome.stats.cache_hits,
        outcome.stats.cache_misses,
        outcome.stats.latency.p50_ms,
        outcome.stats.latency.p99_ms,
    );
    if let Some(wire) = &wire {
        println!(
            "  wire       {:>6} requests in {:>9.1} ms  ({:>8.1} req/s, {} rejected, \
             {} errors, overhead {}, {} verified)",
            wire.completed,
            wire.elapsed.as_secs_f64() * 1e3,
            rps(wire.completed, wire.elapsed),
            wire.rejected,
            wire.errors,
            wire_overhead
                .map(|x| format!("{x:.2}x"))
                .unwrap_or_else(|| "n/a".to_string()),
            wire.verified,
        );
    }
    if let Some(skew) = &skew {
        println!(
            "  skew       fused {:>9.1} ms vs unfused {:>9.1} ms  ({} speedup, \
             {} fused requests, {} replays saved)",
            skew.fused_elapsed.as_secs_f64() * 1e3,
            skew.unfused_elapsed.as_secs_f64() * 1e3,
            fused_speedup
                .map(|x| format!("{x:.2}x"))
                .unwrap_or_else(|| "n/a".to_string()),
            skew.fused_stats.fused_requests,
            skew.fused_stats.fused_replays_saved,
        );
    }
    if let Some(step) = &load_step {
        let placement: Vec<String> = step
            .placement
            .iter()
            .map(|p| format!("{}={}", p.point, p.workers))
            .collect();
        println!(
            "  load-step  autoscaled p99 {:>7.2} ms vs static p99 {:>7.2} ms  \
             (ratio {}, {} rebalances over {} ticks, final {})",
            step.autoscaled_stats.latency.p99_ms,
            step.static_stats.latency.p99_ms,
            p99_ratio
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            step.autoscaled_stats.rebalances,
            step.autoscaled_stats.autoscale_ticks,
            placement.join(" "),
        );
    }

    let document = to_json(
        &opts,
        &outcome,
        baseline_elapsed,
        speedup,
        wire.as_ref(),
        wire_overhead,
        skew.as_ref(),
        fused_speedup,
        load_step.as_ref(),
        p99_ratio,
    );
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = opts.out_dir.join(format!("{BENCH_ID}.json"));
    if let Err(e) = std::fs::write(&path, document.to_pretty_string()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    let mut failed = false;
    if opts.fail_on_reject && outcome.rejected > 0 {
        eprintln!(
            "FAIL: {} requests rejected as Overloaded at this load",
            outcome.rejected
        );
        failed = true;
    }
    // Engine errors fail unconditionally: an errored request completes
    // near-instantly, so any throughput (and any speedup gate) computed
    // over failures would certify garbage.
    if outcome.errors > 0 {
        eprintln!("FAIL: {} requests ended in engine errors", outcome.errors);
        failed = true;
    }
    if let Some(min) = opts.min_speedup {
        if speedup < min {
            eprintln!("FAIL: throughput speedup {speedup:.1}x below the {min}x gate");
            failed = true;
        }
    }
    if let Some(wire) = &wire {
        if opts.fail_on_reject && wire.rejected > 0 {
            eprintln!(
                "FAIL: {} wire requests rejected as backpressure at this load",
                wire.rejected
            );
            failed = true;
        }
        if wire.errors > 0 {
            eprintln!("FAIL: {} wire requests ended in errors", wire.errors);
            failed = true;
        }
        if let Some(max) = opts.max_wire_overhead {
            match wire_overhead {
                Some(overhead) if overhead <= max => {}
                Some(overhead) => {
                    eprintln!("FAIL: wire overhead {overhead:.2}x above the {max}x gate");
                    failed = true;
                }
                None => {
                    eprintln!("FAIL: wire overhead is ungated — no completed wire requests");
                    failed = true;
                }
            }
        }
    }
    if let Some(min) = opts.min_fused_speedup {
        match fused_speedup {
            Some(ratio) if ratio >= min => {}
            Some(ratio) => {
                eprintln!("FAIL: fused speedup {ratio:.2}x below the {min}x gate");
                failed = true;
            }
            None => {
                eprintln!("FAIL: fused speedup is ungated — the fused pass took no time");
                failed = true;
            }
        }
    }
    if let Some(max) = opts.max_p99_ratio {
        match p99_ratio {
            Some(ratio) if ratio <= max => {}
            Some(ratio) => {
                eprintln!("FAIL: autoscaled/static p99 ratio {ratio:.2} above the {max} gate");
                failed = true;
            }
            None => {
                eprintln!("FAIL: p99 ratio is ungated — the static pass recorded no latency");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: serve-bench [--mode closed|open] [--requests N] [--concurrency C]\n\
         \x20                  [--rate RPS] [--workers W] [--queue Q] [--cache K]\n\
         \x20                  [--batch B] [--runs R] [--seed S] [--out DIR]\n\
         \x20                  [--min-speedup X] [--fail-on-reject]\n\
         \x20                  [--wire] [--connect ADDR] [--verify-wire]\n\
         \x20                  [--max-wire-overhead X]\n\
         \x20                  [--skew] [--min-fused-speedup X]\n\
         \x20                  [--load-step] [--max-p99-ratio X]\n\
         \x20                  [--profile DIR]\n\
         Load-tests the dqc-serve layer on the mixed QAOA/QFT/GHZ portfolio and\n\
         writes {BENCH_ID}.json; closed loop holds C requests in flight, open\n\
         loop submits at a fixed rate and counts Overloaded rejections. --wire\n\
         repeats the closed loop through a dqc-served TCP daemon (loopback, or\n\
         --connect ADDR), --verify-wire first pins wire results byte-identical\n\
         to direct evaluation, and --max-wire-overhead gates the wire/in-process\n\
         throughput ratio. --skew serves a duplicate-heavy list with replay\n\
         fusion on vs off (--min-fused-speedup gates the ratio); --load-step\n\
         serves a migrating hot spot with the autoscaler vs a static even\n\
         split (--max-p99-ratio gates autoscaled p99 / static p99).\n\
         --profile DIR runs one small recorded pass and writes the span/\n\
         metrics capture to DIR/profile_serve.json (see dqc-obs report)."
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
