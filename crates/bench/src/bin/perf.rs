//! Wall-clock benchmark harness for the engine's hot paths.
//!
//! ```text
//! perf [--quick] [--out DIR] [--check BASELINE.json] [--max-ratio R] [--seed S]
//! ```
//!
//! Times the three performance-critical comparisons behind the ROADMAP's
//! "fast as the hardware allows" goal with simple warmed timed loops (the
//! vendored Criterion stand-in has no stable machine-readable output, so
//! the harness measures directly):
//!
//! 1. **compile-once vs legacy** — the legacy per-seed pattern
//!    (recompile the circuit for every run, as the removed `evaluate`
//!    free function did) against one `Experiment` sharing a single
//!    compilation;
//! 2. **sequential vs parallel `Sweep`** — the same grid on one worker
//!    thread and on all available cores;
//! 3. **routed vs all-to-all execution** — a 4-node chain (multi-hop
//!    swap chains) against the 4-node complete graph;
//! 4. **served vs sequential request stream** — the mixed serving
//!    portfolio pumped through a `dqc-serve` server (warm caches, worker
//!    pool, fixed client concurrency) against the same request list
//!    compiled-per-request on one thread; the `serve_throughput` derived
//!    metric is the requests/sec ratio;
//! 5. **stabilizer vs analytic backend** — a 64-qubit Clifford-block
//!    workload replayed per seed through the analytic event engine and
//!    through the stabilizer backend's folded schedule; the
//!    `backend_stabilizer_vs_analytic` derived metric is additionally
//!    gated in-run: the run fails unless the fast path is at least
//!    [`MIN_STABILIZER_SPEEDUP`]× faster.
//!
//! Results are written as `BENCH_5.json` in a stable schema (fixed keys,
//! fixed entry names, milliseconds), so the perf trajectory can be
//! tracked across commits. With `--check` the run additionally gates
//! against a committed baseline: it fails (exit 1) when any tracked
//! entry's best iteration is more than `R`× (default 2×) slower than the
//! baseline's mean — the CI `perf-smoke` regression gate.

use dqc_core::{Backend, Design, DqcError, Experiment, Sweep, SystemConfig};
use dqc_entanglement::NetworkTopology;
use dqc_serve::{EvalRequest, ServeBuilder, ServeError};
use dqc_types::{Json, JsonError};
use dqc_workloads::PaperBenchmark;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Name of the emitted artifact; the numeric suffix tracks the PR that
/// introduced (or last re-baselined) the schema.
const BENCH_ID: &str = "BENCH_5";

/// Schema version of the benchmark artifact.
const SCHEMA_VERSION: i64 = 1;

/// Wall-clock statistics of one timed entry, in milliseconds per
/// iteration (one iteration = `reps` executions of the measured work).
#[derive(Debug, Clone, Copy)]
struct Stats {
    /// Inner executions per timed iteration. Fast entries batch many
    /// executions so every recorded time sits well above timer-jitter
    /// scale and the regression gate's floor stays meaningful for them.
    reps: usize,
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

/// Runs `f` once to warm caches, then `iters` timed iterations of
/// `reps` executions each.
fn time_loop(iters: usize, reps: usize, mut f: impl FnMut()) -> Stats {
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let n = samples.len() as f64;
    Stats {
        reps,
        mean_ms: samples.iter().sum::<f64>() / n,
        min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().copied().fold(0.0, f64::max),
    }
}

/// The workload sizes of one harness mode.
struct Profile {
    mode: &'static str,
    /// Timed repetitions per entry.
    iters: usize,
    /// Seeds per compile-path measurement.
    compile_seeds: usize,
    /// Runs per sweep cell / topology experiment.
    runs: usize,
    /// Requests per serve-throughput measurement.
    serve_requests: usize,
}

const QUICK: Profile = Profile {
    mode: "quick",
    iters: 3,
    compile_seeds: 3,
    runs: 2,
    serve_requests: 24,
};

const FULL: Profile = Profile {
    mode: "full",
    iters: 7,
    compile_seeds: 10,
    runs: 10,
    serve_requests: 60,
};

/// A 4-node version of the paper configuration with the given topology.
fn four_node_config(topology: NetworkTopology) -> SystemConfig {
    let mut config = SystemConfig::paper_two_node_32();
    config.data_qubits_per_node = 8;
    config.with_topology(topology)
}

/// Runs every entry of the harness, returning `(name, stats)` pairs in
/// schema order.
fn run_entries(profile: &Profile, seed: u64) -> Result<Vec<(&'static str, Stats)>, DqcError> {
    let mut entries = Vec::new();
    let config = SystemConfig::paper_two_node_32();
    let circuit = PaperBenchmark::QaoaR4_32.circuit();

    // 1. Legacy per-seed evaluation: one compilation *per run* — the
    // cost profile of the removed `evaluate` free function, spelled out.
    eprintln!("timing compile_legacy_evaluate ...");
    let seeds = profile.compile_seeds;
    entries.push((
        "compile_legacy_evaluate",
        time_loop(profile.iters, 1, || {
            for s in 0..seeds {
                dqc_core::CompiledCircuit::compile(&circuit, &config)
                    .and_then(|c| c.run(Design::AsyncBuf, seed + s as u64))
                    .expect("paper benchmark evaluates");
            }
        }),
    ));

    // ... against the engine: one compilation shared by every seed.
    eprintln!("timing compile_once_experiment ...");
    let experiment = Experiment::new(&circuit, &config)?
        .design(Design::AsyncBuf)
        .runs(seeds)
        .base_seed(seed);
    entries.push((
        "compile_once_experiment",
        // Batched: a single shared-compilation replay is tens of
        // microseconds, far below the gate's jitter floor.
        time_loop(profile.iters, 500, || {
            experiment.reports().expect("paper benchmark evaluates");
        }),
    ));

    // 2. The same sweep grid, one worker vs all cores.
    let grid = || {
        Sweep::new()
            .benchmarks([PaperBenchmark::Tlim32, PaperBenchmark::QaoaR4_32])
            .config("paper", SystemConfig::paper_two_node_32())
            .designs(&Design::ALL)
            .runs(profile.runs)
            .base_seed(seed)
    };
    eprintln!("timing sweep_sequential ...");
    entries.push((
        "sweep_sequential",
        time_loop(profile.iters, 1, || {
            grid().threads(1).run().expect("sweep runs");
        }),
    ));
    eprintln!("timing sweep_parallel ...");
    entries.push((
        "sweep_parallel",
        time_loop(profile.iters, 1, || {
            grid().run().expect("sweep runs");
        }),
    ));

    // 3. Remote-gate execution over a routed chain vs the complete graph.
    let remote_heavy = PaperBenchmark::QaoaR8_32.circuit();
    let all_to_all = Experiment::new(
        &remote_heavy,
        &four_node_config(NetworkTopology::all_to_all(4)),
    )?
    .design(Design::AsyncBuf)
    .runs(profile.runs)
    .base_seed(seed);
    eprintln!("timing exec_all_to_all ...");
    entries.push((
        "exec_all_to_all",
        time_loop(profile.iters, 200, || {
            all_to_all.reports().expect("topology experiment runs");
        }),
    ));
    let chain = Experiment::new(&remote_heavy, &four_node_config(NetworkTopology::chain(4)))?
        .design(Design::AsyncBuf)
        .runs(profile.runs)
        .base_seed(seed);
    eprintln!("timing exec_routed_chain ...");
    entries.push((
        "exec_routed_chain",
        time_loop(profile.iters, 100, || {
            chain.reports().expect("topology experiment runs");
        }),
    ));

    // 4. The serving layer vs a sequential, compile-per-request client:
    // the same fixed request list over the mixed portfolio, closed-loop
    // at fixed concurrency through dqc-serve (warm caches amortize the
    // compiles, the worker pool overlaps the replays) against one thread
    // paying a fresh compilation per request.
    let requests = serve_request_list(profile);
    eprintln!("timing serve_sequential_baseline ...");
    entries.push((
        "serve_sequential_baseline",
        time_loop(profile.iters, 1, || {
            dqc_bench::run_sequential_baseline(&requests, &SystemConfig::paper_two_node_32())
                .expect("portfolio requests evaluate");
        }),
    ));
    eprintln!("timing serve_fixed_concurrency ...");
    entries.push((
        "serve_fixed_concurrency",
        time_loop(profile.iters, 1, || {
            serve_closed_loop(&requests).expect("serving the portfolio succeeds");
        }),
    ));

    // 5. The stabilizer fast path vs the analytic event replay on the
    // Clifford suite: a 64-qubit circuit of two dense local blocks
    // stitched by a few bridge CX gates, so the analytic engine replays
    // thousands of local gates per seed while the stabilizer backend's
    // folded schedule touches only the remote gates.
    use rand::SeedableRng;
    let clifford = dqc_workloads::clifford_blocks(
        64,
        8000,
        8,
        &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed),
    );
    let clifford_config = SystemConfig::paper_two_node_64();
    let clifford_analytic = Experiment::new(&clifford, &clifford_config)?
        .design(Design::AsyncBuf)
        .runs(profile.runs)
        .base_seed(seed);
    eprintln!("timing exec_clifford_analytic ...");
    entries.push((
        "exec_clifford_analytic",
        time_loop(profile.iters, 20, || {
            clifford_analytic
                .reports()
                .expect("clifford suite evaluates");
        }),
    ));
    let clifford_stabilizer = Experiment::new(
        &clifford,
        &clifford_config.clone().with_backend(Backend::Stabilizer),
    )?
    .design(Design::AsyncBuf)
    .runs(profile.runs)
    .base_seed(seed);
    eprintln!("timing exec_clifford_stabilizer ...");
    entries.push((
        "exec_clifford_stabilizer",
        // Batched much harder than the analytic twin: one folded-schedule
        // replay is microseconds.
        time_loop(profile.iters, 500, || {
            clifford_stabilizer
                .reports()
                .expect("clifford suite evaluates");
        }),
    ));

    Ok(entries)
}

/// Minimum `backend_stabilizer_vs_analytic` ratio the run itself must
/// demonstrate on the Clifford suite — the stabilizer backend's reason to
/// exist, gated on every run (not only against a baseline).
const MIN_STABILIZER_SPEEDUP: f64 = 5.0;

/// The fixed request list of the serve-throughput entries: the mixed
/// QAOA/QFT/GHZ portfolio tiled round-robin with per-request seeds.
fn serve_request_list(profile: &Profile) -> Vec<EvalRequest> {
    dqc_bench::portfolio_requests(
        profile.serve_requests,
        profile.runs,
        dqc_bench::BASE_SEED,
        "paper",
        &[Design::AdaptBuf],
    )
}

/// Client concurrency of the serve-throughput entry (in-flight requests).
const SERVE_CONCURRENCY: usize = 8;

/// Pumps `requests` through a fresh server with the shared closed-loop
/// client (`dqc_bench::pump_closed_loop` — the same pump `serve-bench`
/// measures with) and shuts it down.
fn serve_closed_loop(requests: &[EvalRequest]) -> Result<(), ServeError> {
    let (server, responses) = ServeBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(4)
        .queue_capacity(requests.len().max(1))
        .spawn()?;
    let (completed, errors) = dqc_bench::pump_closed_loop(
        &server,
        &responses,
        requests.iter().cloned(),
        SERVE_CONCURRENCY,
    )?;
    assert_eq!(completed, requests.len(), "every request completes");
    assert_eq!(errors, 0, "portfolio requests evaluate");
    server.shutdown();
    Ok(())
}

/// Ratio of two entries' mean times **per execution** (normalized by
/// each entry's batching factor), as a named derived metric.
fn ratio(entries: &[(&str, Stats)], name: &'static str, slow: &str, fast: &str) -> (String, f64) {
    let per_exec = |n: &str| {
        entries
            .iter()
            .find(|(e, _)| *e == n)
            .map(|(_, s)| s.mean_ms / s.reps as f64)
            .expect("entry names are fixed")
    };
    (name.to_string(), per_exec(slow) / per_exec(fast))
}

/// Serializes the run into the stable `BENCH_3.json` schema.
fn to_json(profile: &Profile, entries: &[(&str, Stats)], derived: &[(String, f64)]) -> Json {
    Json::object([
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("bench", Json::from(BENCH_ID)),
        ("mode", Json::from(profile.mode)),
        ("iters", Json::from(profile.iters)),
        (
            "entries",
            Json::Array(
                entries
                    .iter()
                    .map(|(name, s)| {
                        Json::object([
                            ("name", Json::from(*name)),
                            ("reps", Json::from(s.reps)),
                            ("mean_ms", Json::float(s.mean_ms)),
                            ("min_ms", Json::float(s.min_ms)),
                            ("max_ms", Json::float(s.max_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "derived",
            Json::Array(
                derived
                    .iter()
                    .map(|(name, value)| {
                        Json::object([
                            ("name", Json::from(name.as_str())),
                            ("value", Json::float(*value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Sub-millisecond entries sit at timer-jitter scale, where a 2× swing
/// means nothing; the gate only fires once an entry is also at least
/// this many milliseconds over its baseline.
const JITTER_FLOOR_MS: f64 = 2.0;

/// Gates the current run against a committed baseline document: any
/// tracked entry whose best (min) time exceeds `max_ratio` × the
/// baseline's mean — by more than [`JITTER_FLOOR_MS`] — fails the check.
/// Comparing the current *best* against the baseline *mean* gives the
/// noisy CI runner the benefit of the doubt in both directions.
fn check_against(
    baseline: &Json,
    profile: &Profile,
    entries: &[(&str, Stats)],
    max_ratio: f64,
) -> Result<Vec<String>, JsonError> {
    let mut regressions = Vec::new();
    // Quick and full mode time different workload sizes, so comparing
    // across modes would report phantom regressions (or hide real ones).
    let baseline_mode = baseline.str_field("mode")?;
    if baseline_mode != profile.mode {
        return Ok(vec![format!(
            "baseline was recorded in {baseline_mode} mode but this run is {} mode — \
             rerun with the matching flag or regenerate the baseline",
            profile.mode
        )]);
    }
    for item in baseline.array_field("entries")? {
        let name = item.str_field("name")?;
        let baseline_mean = item.f64_field("mean_ms")?;
        let baseline_reps = item.usize_field("reps")?;
        let Some((_, current)) = entries.iter().find(|(e, _)| *e == name) else {
            regressions.push(format!(
                "entry `{name}` missing from this run (schema drift)"
            ));
            continue;
        };
        if current.reps != baseline_reps {
            regressions.push(format!(
                "{name}: batching changed ({} reps vs baseline {baseline_reps}) — \
                 regenerate the baseline",
                current.reps
            ));
            continue;
        }
        if current.min_ms > max_ratio * baseline_mean + JITTER_FLOOR_MS {
            regressions.push(format!(
                "{name}: best {:.1} ms vs baseline mean {:.1} ms (> {max_ratio}x)",
                current.min_ms, baseline_mean
            ));
        }
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = &FULL;
    let mut out_dir = PathBuf::from(".");
    let mut baseline_path: Option<String> = None;
    let mut max_ratio = 2.0f64;
    let mut seed = dqc_bench::BASE_SEED;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => profile = &QUICK,
            "--full" => profile = &FULL,
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "--check" => match iter.next() {
                Some(path) => baseline_path = Some(path.clone()),
                None => return usage("--check needs a baseline file"),
            },
            "--max-ratio" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0.0 => max_ratio = r,
                _ => return usage("--max-ratio needs a positive number"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let entries = match run_entries(profile, seed) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let derived = vec![
        ratio(
            &entries,
            "compile_once_speedup",
            "compile_legacy_evaluate",
            "compile_once_experiment",
        ),
        ratio(
            &entries,
            "parallel_sweep_speedup",
            "sweep_sequential",
            "sweep_parallel",
        ),
        ratio(
            &entries,
            "routed_chain_overhead",
            "exec_routed_chain",
            "exec_all_to_all",
        ),
        // Requests/sec ratio of the serving layer over the sequential
        // compile-per-request client: both entries serve the same request
        // list once per iteration, so the time ratio is the throughput
        // ratio.
        ratio(
            &entries,
            "serve_throughput",
            "serve_sequential_baseline",
            "serve_fixed_concurrency",
        ),
        ratio(
            &entries,
            "backend_stabilizer_vs_analytic",
            "exec_clifford_analytic",
            "exec_clifford_stabilizer",
        ),
    ];

    println!(
        "{BENCH_ID} ({} mode, {} iters):",
        profile.mode, profile.iters
    );
    for (name, s) in &entries {
        println!(
            "  {name:<26} mean {:>9.2} ms  (min {:>9.2}, max {:>9.2}, x{})",
            s.mean_ms, s.min_ms, s.max_ms, s.reps
        );
    }
    for (name, value) in &derived {
        println!("  {name:<26} {value:>9.2}x");
    }

    let document = to_json(profile, &entries, &derived);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("{BENCH_ID}.json"));
    if let Err(e) = std::fs::write(&path, document.to_pretty_string()) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    let stabilizer_speedup = derived
        .iter()
        .find(|(name, _)| name == "backend_stabilizer_vs_analytic")
        .map(|(_, value)| *value)
        .expect("derived names are fixed");
    if stabilizer_speedup < MIN_STABILIZER_SPEEDUP {
        eprintln!(
            "error: stabilizer backend only {stabilizer_speedup:.1}x faster than analytic \
             on the Clifford suite (gate: {MIN_STABILIZER_SPEEDUP}x)"
        );
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = baseline_path {
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: cannot load baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_against(&baseline, profile, &entries, max_ratio) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "baseline check passed (no entry slower than {max_ratio}x {baseline_path})"
                );
            }
            Ok(regressions) => {
                eprintln!("performance regressions against {baseline_path}:");
                for r in &regressions {
                    eprintln!("  {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: malformed baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: perf [--quick | --full] [--out DIR] [--check BASELINE.json]\n\
         \x20           [--max-ratio R] [--seed S]\n\
         Times the engine's hot paths and writes {BENCH_ID}.json; with\n\
         --check, fails when any entry regresses more than R x (default 2)\n\
         over the baseline's mean."
    );
    if message.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
