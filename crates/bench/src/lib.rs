//! Reproduction harness for every table and figure of the paper's
//! evaluation (§IV–V).
//!
//! Each `*_data` function regenerates the numbers behind one artifact;
//! each `print_*` function renders them in the layout of the paper. Every
//! figure and ablation runner is one [`Sweep`] — the grid of {benchmark ×
//! design × config} cells runs through the engine's thread-parallel,
//! compile-once runner, so a full `repro all` compiles each benchmark
//! once per configuration instead of once per seed. The
//! [`repro` binary](../repro/index.html) drives them from the command
//! line, and the Criterion benches under `benches/` time the underlying
//! computations.
//!
//! # Examples
//!
//! ```no_run
//! // Regenerate Table I (runs the partitioner on all six benchmarks):
//! let rows = dqc_bench::table1_data();
//! dqc_bench::print_table1(&rows);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dqc_circuit::Circuit;
use dqc_core::{
    AveragedReport, Backend, Design, DqcError, Experiment, Sweep, SweepResult, SystemConfig,
};
use dqc_entanglement::{EntanglementService, GenerationPattern, NetworkTopology};
use dqc_partition::partition_circuit;
use dqc_types::{Json, JsonError, Tick};
use dqc_workloads::PaperBenchmark;

mod artifact;

pub use artifact::{target_data, target_names, Artifact, SCHEMA_VERSION};

/// Number of randomized runs the paper averages per bar.
pub const PAPER_RUNS: usize = 50;

/// Base seed for all reproduction sweeps (any value reproduces the same
/// output; this one is fixed so EXPERIMENTS.md numbers are stable).
pub const BASE_SEED: u64 = 2025;

// ------------------------------------------------------ Backend override

/// Process-wide backend override, as an index into [`Backend::ALL`];
/// `usize::MAX` means "no override" (the engine default, `analytic`).
static BACKEND_OVERRIDE: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(usize::MAX);

/// Selects the simulation backend every reproduction target runs on
/// (`repro --backend`'s hook). The default, [`Backend::Analytic`], is
/// bit-for-bit the pre-backend engine, so goldens are unaffected unless
/// a caller opts in. Targets that sweep backends explicitly (the
/// backend matrix) ignore the override.
pub fn set_backend(backend: Backend) {
    let index = Backend::ALL
        .iter()
        .position(|b| *b == backend)
        .expect("Backend::ALL lists every backend");
    BACKEND_OVERRIDE.store(index, std::sync::atomic::Ordering::Relaxed);
}

/// The backend selected by [`set_backend`], or the engine default.
pub fn backend_override() -> Backend {
    match BACKEND_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        usize::MAX => Backend::default(),
        index => Backend::ALL[index],
    }
}

/// The paper's two-node 32-qubit point with the process-wide backend
/// override applied — the base configuration of every 32-qubit target.
pub fn paper_config_32() -> SystemConfig {
    SystemConfig::paper_two_node_32().with_backend(backend_override())
}

/// The 64-qubit sibling of [`paper_config_32`].
pub fn paper_config_64() -> SystemConfig {
    SystemConfig::paper_two_node_64().with_backend(backend_override())
}

// ---------------------------------------------------------------- Table I

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Benchmark name as printed in the paper.
    pub name: String,
    /// Data-qubit count.
    pub qubits: u32,
    /// Two-qubit gates that stay within a node after partitioning.
    pub local_2q: usize,
    /// Two-qubit gates that cross the node cut.
    pub remote_2q: usize,
    /// Single-qubit gates.
    pub one_q: usize,
    /// Unit circuit depth.
    pub depth: usize,
}

impl Table1Row {
    /// Serializes the row for the machine-readable results pipeline.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("qubits", Json::Int(i64::from(self.qubits))),
            ("local_2q", Json::from(self.local_2q)),
            ("remote_2q", Json::from(self.remote_2q)),
            ("one_q", Json::from(self.one_q)),
            ("depth", Json::from(self.depth)),
        ])
    }

    /// Reads a row back from [`Table1Row::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: json.str_field("name")?.to_string(),
            qubits: u32::try_from(json.i64_field("qubits")?)
                .map_err(|_| JsonError::schema("field `qubits`: out of range"))?,
            local_2q: json.usize_field("local_2q")?,
            remote_2q: json.usize_field("remote_2q")?,
            one_q: json.usize_field("one_q")?,
            depth: json.usize_field("depth")?,
        })
    }
}

/// Regenerates Table I: benchmark properties under the 2-node METIS-style
/// partition.
pub fn table1_data() -> Vec<Table1Row> {
    PaperBenchmark::ALL
        .iter()
        .map(|bench| {
            let circuit = bench.circuit();
            let map = partition_circuit(&circuit, 2, SystemConfig::default().partition_seed)
                .expect("paper benchmarks partition cleanly");
            Table1Row {
                name: bench.to_string(),
                qubits: circuit.num_qubits(),
                local_2q: map.count_local_2q(&circuit),
                remote_2q: map.count_remote(&circuit),
                one_q: circuit.counts().single_qubit,
                depth: circuit.depth(),
            }
        })
        .collect()
}

/// Prints Table I in the paper's column layout.
pub fn print_table1(rows: &[Table1Row]) {
    println!("TABLE I: BENCHMARK PROPERTIES (2-node multilevel partition)");
    println!(
        "{:<12} {:>7} {:>10} {:>11} {:>7} {:>7}",
        "Name", "#qubits", "#local 2Q", "#remote 2Q", "#1Q", "depth"
    );
    for r in rows {
        println!(
            "{:<12} {:>7} {:>10} {:>11} {:>7} {:>7}",
            r.name, r.qubits, r.local_2q, r.remote_2q, r.one_q, r.depth
        );
    }
}

// --------------------------------------------------------------- Table II

/// One operation row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Operation name as printed in the paper.
    pub name: String,
    /// Latency in CNOT units.
    pub latency_cnot_units: f64,
    /// Operation fidelity in `[0, 1]`.
    pub fidelity: f64,
}

/// Table II plus the footnote constants, extracted from a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Data {
    /// The four operation rows.
    pub rows: Vec<Table2Row>,
    /// Per-attempt entanglement success probability.
    pub psucc: f64,
    /// Idling coherence time `1/κ` in CNOT units.
    pub inv_kappa_cnot_units: f64,
}

/// Regenerates Table II — the operation latencies/fidelities actually used
/// by the executor under `config`.
pub fn table2_data(config: &SystemConfig) -> Table2Data {
    let rows = [
        (
            "1Q gates",
            config.latencies.one_qubit,
            config.fidelities.one_qubit,
        ),
        (
            "Local CNOT gates",
            config.latencies.two_qubit,
            config.fidelities.two_qubit,
        ),
        (
            "Measurement",
            config.latencies.measurement,
            config.fidelities.measurement,
        ),
        (
            "EPR pair preparation",
            config.latencies.epr_cycle,
            config.fidelities.epr,
        ),
    ];
    Table2Data {
        rows: rows
            .into_iter()
            .map(|(name, latency, fidelity)| Table2Row {
                name: name.to_string(),
                latency_cnot_units: latency.as_cnot_units(),
                fidelity,
            })
            .collect(),
        psucc: config.success_probability,
        inv_kappa_cnot_units: 1.0 / (config.kappa_per_tick * Tick::TICKS_PER_CNOT as f64),
    }
}

impl Table2Data {
    /// Serializes the table for the machine-readable results pipeline.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("name", Json::from(r.name.as_str())),
                                ("latency_cnot_units", Json::float(r.latency_cnot_units)),
                                ("fidelity", Json::float(r.fidelity)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("psucc", Json::float(self.psucc)),
            (
                "inv_kappa_cnot_units",
                Json::float(self.inv_kappa_cnot_units),
            ),
        ])
    }

    /// Reads the table back from [`Table2Data::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            rows: json
                .array_field("rows")?
                .iter()
                .map(|r| {
                    Ok(Table2Row {
                        name: r.str_field("name")?.to_string(),
                        latency_cnot_units: r.f64_field("latency_cnot_units")?,
                        fidelity: r.f64_field("fidelity")?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            psucc: json.f64_field("psucc")?,
            inv_kappa_cnot_units: json.f64_field("inv_kappa_cnot_units")?,
        })
    }
}

/// Prints Table II — the operation latencies/fidelities actually used by
/// the executor.
pub fn print_table2(config: &SystemConfig) {
    print_table2_from(&table2_data(config));
}

/// Prints Table II from pre-extracted data.
pub fn print_table2_from(data: &Table2Data) {
    println!("TABLE II: QUANTUM OPERATION PROPERTIES");
    println!("{:<22} {:>9} {:>10}", "Name", "Latency", "Fidelity");
    for row in &data.rows {
        println!(
            "{:<22} {:>9.1} {:>9.2}%",
            row.name,
            row.latency_cnot_units,
            row.fidelity * 100.0
        );
    }
    println!(
        "psucc = {}, 1/kappa = {:.0} CNOT units, local CNOT = 300 ns",
        data.psucc, data.inv_kappa_cnot_units
    );
}

// ----------------------------------------------------------------- Fig. 3

/// Arrival histogram of successful generations, in links per `T_local`
/// bucket, for the first `cycles` attempt cycles.
pub fn fig3_data(pattern: GenerationPattern, cycles: usize, seed: u64) -> Vec<usize> {
    let config = SystemConfig::default().service_config(pattern, true);
    let horizon = config.attempt_cycle * cycles as i64;
    let mut service = EntanglementService::new(
        dqc_entanglement::ServiceConfig {
            buffer_capacity: 10_000, // observe raw arrivals without stalls
            cutoff: dqc_entanglement::CutoffPolicy::Keep,
            ..config
        },
        seed,
    );
    service.advance_to(horizon);
    let bucket = Tick::CNOT; // one T_local
    let n_buckets = (horizon.ticks() / bucket.ticks()) as usize;
    let mut histogram = vec![0usize; n_buckets];
    for &arrival in service.arrivals() {
        let idx = (arrival.ticks() / bucket.ticks()) as usize;
        if idx < n_buckets {
            histogram[idx] += 1;
        }
    }
    histogram
}

/// Both Fig. 3 arrival histograms (links per `T_local` bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig3Histograms {
    /// Attempt cycles simulated.
    pub cycles: usize,
    /// Arrivals under lockstep (synchronous) generation.
    pub synchronous: Vec<usize>,
    /// Arrivals under staggered (asynchronous, 10 groups) generation.
    pub asynchronous: Vec<usize>,
}

/// Regenerates both Fig. 3 panels over the first `cycles` attempt cycles.
pub fn fig3_histograms(cycles: usize, seed: u64) -> Fig3Histograms {
    Fig3Histograms {
        cycles,
        synchronous: fig3_data(GenerationPattern::Synchronous, cycles, seed),
        asynchronous: fig3_data(GenerationPattern::Asynchronous { groups: 10 }, cycles, seed),
    }
}

impl Fig3Histograms {
    /// Serializes the histograms for the machine-readable results pipeline.
    pub fn to_json(&self) -> Json {
        let hist = |h: &[usize]| Json::Array(h.iter().map(|&c| Json::from(c)).collect());
        Json::object([
            ("cycles", Json::from(self.cycles)),
            ("synchronous", hist(&self.synchronous)),
            ("asynchronous", hist(&self.asynchronous)),
        ])
    }

    /// Reads histograms back from [`Fig3Histograms::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let hist = |key: &str| -> Result<Vec<usize>, JsonError> {
            json.array_field(key)?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .and_then(|i| usize::try_from(i).ok())
                        .ok_or_else(|| JsonError::schema(format!("field `{key}`: expected counts")))
                })
                .collect()
        };
        Ok(Self {
            cycles: json.usize_field("cycles")?,
            synchronous: hist("synchronous")?,
            asynchronous: hist("asynchronous")?,
        })
    }
}

/// Prints the Fig. 3 sync-vs-async arrival comparison as text sparklines.
pub fn print_fig3(seed: u64) {
    print_fig3_from(&fig3_histograms(10, seed));
}

/// Prints Fig. 3 from pre-computed histograms.
pub fn print_fig3_from(data: &Fig3Histograms) {
    println!("FIG 3: ENTANGLEMENT ARRIVALS PER T_local (10 comm pairs, psucc = 0.4)");
    for (label, hist) in [
        ("synchronous", &data.synchronous),
        ("asynchronous", &data.asynchronous),
    ] {
        let line: String = hist
            .iter()
            .map(|&c| char::from_digit(c.min(9) as u32, 10).unwrap_or('9'))
            .collect();
        let total: usize = hist.iter().sum();
        let occupied = hist.iter().filter(|c| **c > 0).count();
        println!("{label:>13}: {line}");
        println!(
            "{:>13}  total {total} links in {} buckets ({} buckets occupied)",
            "",
            hist.len(),
            occupied
        );
    }
}

// ------------------------------------------------------------- Fig. 5 / 6

/// Depth and fidelity of every design on one benchmark (one panel of
/// Figures 5 and 6): one compilation shared by all designs.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn design_sweep(
    bench: PaperBenchmark,
    config: &SystemConfig,
    designs: &[Design],
    runs: usize,
    seed: u64,
) -> Result<Vec<AveragedReport>, DqcError> {
    let experiment = Experiment::new(&bench.circuit(), config)?
        .runs(runs)
        .base_seed(seed);
    designs
        .iter()
        .map(|&design| experiment.clone().design(design).run())
        .collect()
}

/// Extracts one benchmark panel (all designs, grid order) from a sweep.
fn panel_reports(result: &SweepResult, bench: PaperBenchmark, config: &str) -> Vec<AveragedReport> {
    result
        .panel(&bench.to_string(), config)
        .into_iter()
        .map(|cell| cell.report.clone())
        .collect()
}

/// Prints one Fig. 5 panel: absolute depth and depth relative to ideal.
pub fn print_depth_panel(bench: PaperBenchmark, reports: &[AveragedReport]) {
    println!("-- {bench}");
    for r in reports {
        println!(
            "  {:<9} depth {:>8.1}  ({:>6.2}x ideal)   link-wait {:>6.1}t  wasted {:>6.1}",
            r.design.name(),
            r.mean_depth,
            r.mean_depth_relative,
            r.mean_link_wait,
            r.mean_wasted
        );
    }
}

/// Prints one Fig. 6 panel: absolute output fidelity.
pub fn print_fidelity_panel(bench: PaperBenchmark, reports: &[AveragedReport]) {
    println!("-- {bench}");
    for r in reports {
        println!(
            "  {:<9} fidelity {}   (relative to ideal {})",
            r.design.name(),
            format_fidelity(r.mean_fidelity),
            format_fidelity(relative_to_ideal(reports, r))
        );
    }
}

/// Formats a fidelity with fixed decimals, switching to scientific
/// notation when the value would round to zero (QFT's collapse remains
/// comparable across designs).
fn format_fidelity(f: f64) -> String {
    if f == 0.0 || f >= 5e-4 {
        format!("{f:.4}")
    } else {
        format!("{f:.2e}")
    }
}

fn relative_to_ideal(reports: &[AveragedReport], r: &AveragedReport) -> f64 {
    let ideal = reports
        .iter()
        .find(|x| x.design == Design::Ideal)
        .map_or(1.0, |x| x.mean_fidelity);
    if ideal > 0.0 {
        r.mean_fidelity / ideal
    } else {
        0.0
    }
}

/// The shared Fig. 5/6 grid: the four 32-qubit benchmarks × all six
/// designs on the paper configuration, as one parallel sweep.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn fig56_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    Sweep::new()
        .benchmarks(PaperBenchmark::FIG5)
        .config("paper", paper_config_32())
        .designs(&Design::ALL)
        .runs(runs)
        .base_seed(seed)
        .run()
}

/// Prints Figure 5 from a completed [`fig56_sweep`] grid.
pub fn print_fig5_from(result: &SweepResult, runs: usize) {
    println!("FIG 5: CIRCUIT DEPTH ACROSS DESIGNS ({runs}-run averages)");
    for bench in PaperBenchmark::FIG5 {
        print_depth_panel(bench, &panel_reports(result, bench, "paper"));
    }
}

/// Prints Figure 6 from a completed [`fig56_sweep`] grid.
pub fn print_fig6_from(result: &SweepResult, runs: usize) {
    println!("FIG 6: CIRCUIT FIDELITY ACROSS DESIGNS ({runs}-run averages)");
    for bench in PaperBenchmark::FIG5 {
        print_fidelity_panel(bench, &panel_reports(result, bench, "paper"));
    }
}

/// Runs and prints the full Figure 5 (depth, 4 × 32-qubit benchmarks).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_fig5(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_fig5_from(&fig56_sweep(runs, seed)?, runs);
    Ok(())
}

/// Runs and prints the full Figure 6 (fidelity, 4 × 32-qubit benchmarks).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_fig6(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_fig6_from(&fig56_sweep(runs, seed)?, runs);
    Ok(())
}

/// Runs the shared Fig. 5/6 grid **once** and prints both figures —
/// Figures 5 and 6 are two renderings of the same experiments, so the
/// `all` reproduction path uses this instead of paying the sweep twice.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_fig56(runs: usize, seed: u64) -> Result<(), DqcError> {
    let result = fig56_sweep(runs, seed)?;
    print_fig5_from(&result, runs);
    println!();
    print_fig6_from(&result, runs);
    Ok(())
}

// ----------------------------------------------------------------- Fig. 7

/// The communication/buffer-qubit counts swept by Figure 7.
const FIG7_COMM_COUNTS: [usize; 3] = [10, 15, 20];

/// The sweep grid behind Figure 7: QAOA-r8-32 with 10/15/20 communication
/// and buffer qubits (buffered designs + ideal), one configuration axis.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn fig7_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut designs = Design::BUFFERED.to_vec();
    designs.push(Design::Ideal);
    let mut sweep = Sweep::new()
        .benchmark(PaperBenchmark::QaoaR8_32)
        .designs(&designs)
        .runs(runs)
        .base_seed(seed);
    for n in FIG7_COMM_COUNTS {
        sweep = sweep.config(
            format!("comm{n}"),
            paper_config_32().with_comm_and_buffer(n),
        );
    }
    sweep.run()
}

/// Prints Figure 7 from a completed [`fig7_sweep`] grid.
pub fn print_fig7_from(result: &SweepResult, runs: usize) {
    println!("FIG 7: QAOA-r8-32 DEPTH vs COMMUNICATION/BUFFER QUBITS ({runs}-run averages)");
    for n in FIG7_COMM_COUNTS {
        println!("-- #comm_qb = {n}, #buff_qb = {n}");
        for cell in result.panel(&PaperBenchmark::QaoaR8_32.to_string(), &format!("comm{n}")) {
            let r = &cell.report;
            println!(
                "  {:<9} depth {:>8.1}  ({:>6.2}x ideal)  fidelity {:.4}",
                r.design.name(),
                r.mean_depth,
                r.mean_depth_relative,
                r.mean_fidelity
            );
        }
    }
}

/// Runs and prints Figure 7: QAOA-r8-32 depth with 10/15/20 communication
/// and buffer qubits (buffered designs + ideal), as one sweep over the
/// configuration axis.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_fig7(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_fig7_from(&fig7_sweep(runs, seed)?, runs);
    Ok(())
}

// ----------------------------------------------------------------- Fig. 8

/// Runs and prints Figure 8: the 64-qubit system (32 data + 20 comm + 20
/// buffer per node) on QAOA-r4-64 and QAOA-r8-64.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_fig8(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_fig8_from(&fig8_sweep(runs, seed)?, runs);
    Ok(())
}

/// The sweep grid behind Figure 8: QAOA-r4-64 / QAOA-r8-64 × all designs
/// on the 64-qubit system configuration.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn fig8_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    Sweep::new()
        .benchmarks(PaperBenchmark::FIG8)
        .config("paper64", paper_config_64())
        .designs(&Design::ALL)
        .runs(runs)
        .base_seed(seed)
        .run()
}

/// Prints Figure 8 from a completed [`fig8_sweep`] grid.
pub fn print_fig8_from(result: &SweepResult, runs: usize) {
    println!("FIG 8: 64-QUBIT SYSTEM DEPTH ACROSS DESIGNS ({runs}-run averages)");
    for bench in PaperBenchmark::FIG8 {
        print_depth_panel(bench, &panel_reports(result, bench, "paper64"));
    }
}

// --------------------------------------------------------- Topology sweep

/// The topology families swept by [`run_topology_sweep`], with their
/// device graphs for a given node count.
fn topology_axis(nodes: usize) -> Vec<(&'static str, NetworkTopology)> {
    let grid = match nodes {
        4 => NetworkTopology::grid2d(2, 2),
        8 => NetworkTopology::grid2d(2, 4),
        n => NetworkTopology::grid2d(1, n),
    };
    vec![
        ("chain", NetworkTopology::chain(nodes)),
        ("ring", NetworkTopology::ring(nodes)),
        ("grid", grid),
        ("all_to_all", NetworkTopology::all_to_all(nodes)),
    ]
}

/// The sweep grid behind the topology figure: the remote-heavy QAOA-r8-32
/// benchmark on {chain, ring, grid, all-to-all} × node-count
/// configurations, async-buffered design, as one compile-once [`Sweep`].
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn topology_sweep(nodes: usize, runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut base = paper_config_32();
    base.data_qubits_per_node = 32 / nodes;
    let mut sweep = Sweep::new()
        .benchmark(PaperBenchmark::QaoaR8_32)
        .designs(&[Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for (name, topology) in topology_axis(nodes) {
        sweep = sweep.config(name, base.with_topology(topology));
    }
    sweep.run()
}

/// Runs and prints the network-topology sweep (extension beyond the
/// paper): end-to-end depth and fidelity of the remote-heavy QAOA-r8-32
/// benchmark when the implicit all-to-all network is replaced by sparse
/// device graphs whose non-adjacent remote gates pay multi-hop swap
/// chains.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_topology_sweep(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_topology_from(&topology_sweep_all(runs, seed)?, runs);
    Ok(())
}

/// The node counts covered by the topology-sweep target.
pub const TOPOLOGY_NODE_COUNTS: [usize; 2] = [2, 4];

/// Runs the topology sweep for every node count in
/// [`TOPOLOGY_NODE_COUNTS`], pairing each count with its grid.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn topology_sweep_all(runs: usize, seed: u64) -> Result<Vec<(usize, SweepResult)>, DqcError> {
    TOPOLOGY_NODE_COUNTS
        .into_iter()
        .map(|nodes| Ok((nodes, topology_sweep(nodes, runs, seed)?)))
        .collect()
}

/// Prints the topology sweep from completed [`topology_sweep_all`] grids.
pub fn print_topology_from(results: &[(usize, SweepResult)], runs: usize) {
    println!("TOPOLOGY SWEEP: QAOA-r8-32 ACROSS NETWORK TOPOLOGIES ({runs}-run averages)");
    for (nodes, result) in results {
        println!("-- {nodes} nodes x {} data qubits", 32 / nodes);
        for cell in &result.cells {
            let r = &cell.report;
            println!(
                "  {:<10} depth {:>8.1}  ({:>6.2}x ideal)  fidelity {:.4}  link-wait {:>6.1}t",
                cell.config, r.mean_depth, r.mean_depth_relative, r.mean_fidelity, r.mean_link_wait
            );
        }
    }
}

// --------------------------------------------------------------- Codesign

/// The communication/buffer counts searched by the codesign target.
const CODESIGN_COMM_AXIS: [usize; 3] = [5, 10, 20];

/// The initial EPR fidelities searched by the codesign target.
const CODESIGN_EPR_AXIS: [f64; 2] = [0.95, 0.99];

/// The designs searched by the codesign target: the paper's buildable
/// distributed designs. `ideal` is the monolithic reference (not a
/// distributed design one could provision), and `init_buf` assumes
/// pre-execution idle time that fills every buffer for free — neither is
/// a fair candidate under a hardware-cost objective.
const CODESIGN_DESIGNS: [Design; 4] = [
    Design::Original,
    Design::SyncBuf,
    Design::AsyncBuf,
    Design::AdaptBuf,
];

/// The design space behind the `codesign` repro target: EPR fidelity ×
/// comm/buffer provisioning × buildable designs around the paper's
/// two-node 32-qubit base system.
pub fn codesign_space() -> dqc_core::DesignSpace {
    dqc_core::DesignSpace::new(paper_config_32())
        .epr_fidelities(&CODESIGN_EPR_AXIS)
        .comm_and_buffer(&CODESIGN_COMM_AXIS)
        .designs(&CODESIGN_DESIGNS)
}

/// The paper's recommended operating point as a structured scenario key:
/// `adapt_buf` on the two-node 32-qubit system (10 comm + 10 buffer
/// qubits per node, 99 % EPR fidelity) running the remote-heavy
/// QAOA-r8-32 benchmark.
pub fn codesign_paper_point() -> dqc_core::ScenarioKey {
    dqc_core::ScenarioKey {
        circuit: PaperBenchmark::QaoaR8_32.to_string(),
        values: vec![
            dqc_core::AxisValue::EprFidelity(0.99),
            dqc_core::AxisValue::CommAndBuffer(10),
            dqc_core::AxisValue::Design(Design::AdaptBuf),
        ],
    }
}

/// Runs the codesign search behind the `codesign` repro target: an
/// exhaustive grid over [`codesign_space`] on QAOA-r8-32, priced by the
/// default cost model, with Pareto-frontier extraction over (fidelity ↑,
/// relative depth ↓, hardware cost ↓).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn codesign_search(runs: usize, seed: u64) -> Result<dqc_codesign::CodesignResult, DqcError> {
    dqc_codesign::Codesign::benchmark(PaperBenchmark::QaoaR8_32, codesign_space())
        .runs(runs)
        .base_seed(seed)
        .run()
}

/// Prints a completed codesign search: one row per frontier point (the
/// paper operating point flagged), then the dominated-point count.
pub fn print_codesign_from(result: &dqc_codesign::CodesignResult, runs: usize) {
    println!(
        "CODESIGN SEARCH: {} over {} design points ({runs}-run averages, {} compilations)",
        result.circuit,
        result.candidates.len(),
        result.compilations
    );
    println!("Pareto frontier (fidelity max, depth-vs-ideal min, hardware cost min):");
    let paper_point = codesign_paper_point();
    for c in result.frontier_candidates() {
        let marker = if c.key == paper_point {
            "  <- paper operating point"
        } else {
            ""
        };
        println!(
            "  * {:<55} depth {:>6.2}x  fidelity {:.4}  cost {:>6.1}{marker}",
            c.key.point_label(),
            c.objectives.depth_relative,
            c.objectives.fidelity,
            c.objectives.hardware_cost
        );
    }
    let dominated = result.candidates.len() - result.frontier.len();
    println!(
        "dominated: {dominated} of {} points",
        result.candidates.len()
    );
}

/// Runs and prints the codesign search (the paper's co-design loop as a
/// reproduction target).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_codesign(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_codesign_from(&codesign_search(runs, seed)?, runs);
    Ok(())
}

// -------------------------------------------------------------- Ablations

/// Sweeps the buffer cutoff age and reports depth/fidelity/waste for one
/// design (extension beyond the paper: quantifies §III-C's cutoff remark).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_cutoff_ablation(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_cutoff_ablation_from(&cutoff_ablation_sweep(runs, seed)?, runs);
    Ok(())
}

/// The sweep grid behind the cutoff ablation (config labels are the
/// cutoff ages in ticks).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn cutoff_ablation_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let cutoffs = [50i64, 100, 150, 250, 500, 1000];
    let mut sweep = Sweep::new()
        .benchmark(PaperBenchmark::QaoaR8_32)
        .designs(&[Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for t in cutoffs {
        let mut config = paper_config_32();
        config.cutoff = dqc_entanglement::CutoffPolicy::MaxAge(Tick::new(t));
        sweep = sweep.config(format!("{t}"), config);
    }
    sweep.run()
}

/// Prints the cutoff ablation from a completed
/// [`cutoff_ablation_sweep`] grid.
pub fn print_cutoff_ablation_from(result: &SweepResult, runs: usize) {
    println!("ABLATION: BUFFER CUTOFF AGE (QAOA-r8-32, async_buf, {runs}-run averages)");
    for cell in &result.cells {
        let r = &cell.report;
        println!(
            "  cutoff {:>5}t: depth {:>7.1}  fidelity {:.4}  wasted {:>6.1}",
            cell.config, r.mean_depth, r.mean_fidelity, r.mean_wasted
        );
    }
}

/// Sweeps the per-attempt success probability, showing where buffering
/// stops mattering (extension).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_psucc_ablation(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_psucc_ablation_from(&psucc_ablation_sweep(runs, seed)?, runs);
    Ok(())
}

/// The success probabilities swept by the psucc ablation.
const PSUCC_AXIS: [f64; 5] = [0.1, 0.2, 0.4, 0.6, 0.8];

/// The sweep grid behind the psucc ablation (config labels are the
/// probabilities).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn psucc_ablation_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut sweep = Sweep::new()
        .benchmark(PaperBenchmark::QaoaR8_32)
        .designs(&[Design::Original, Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for p in PSUCC_AXIS {
        let mut config = paper_config_32();
        config.success_probability = p;
        sweep = sweep.config(format!("{p}"), config);
    }
    sweep.run()
}

/// Prints the psucc ablation from a completed [`psucc_ablation_sweep`]
/// grid.
pub fn print_psucc_ablation_from(result: &SweepResult, runs: usize) {
    println!("ABLATION: SUCCESS PROBABILITY (QAOA-r8-32, {runs}-run averages)");
    let name = PaperBenchmark::QaoaR8_32.to_string();
    for p in PSUCC_AXIS {
        let orig = &result
            .cell(&name, &format!("{p}"), Design::Original)
            .expect("psucc sweep covers every probability")
            .report;
        let asyn = &result
            .cell(&name, &format!("{p}"), Design::AsyncBuf)
            .expect("psucc sweep covers every probability")
            .report;
        println!(
            "  psucc {p:.1}: original {:>7.1}  async_buf {:>7.1}  (gain {:>5.2}x)",
            orig.mean_depth,
            asyn.mean_depth,
            orig.mean_depth / asyn.mean_depth
        );
    }
}

/// Compares the two remote-gate protocols (extension: the paper's stated
/// future work of combining gate and state teleportation).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_protocol_ablation(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_protocol_ablation_from(&protocol_ablation_sweep(runs, seed)?, runs);
    Ok(())
}

/// The two protocols compared by the protocol ablation.
const PROTOCOL_AXIS: [dqc_core::RemoteProtocol; 2] = [
    dqc_core::RemoteProtocol::GateTeleport,
    dqc_core::RemoteProtocol::StateTeleport,
];

/// The sweep grid behind the protocol ablation (config labels are the
/// protocol debug names).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn protocol_ablation_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut sweep = Sweep::new()
        .benchmarks([PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32])
        .designs(&[Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for protocol in PROTOCOL_AXIS {
        let mut config = paper_config_32();
        config.remote_protocol = protocol;
        sweep = sweep.config(format!("{protocol:?}"), config);
    }
    sweep.run()
}

/// Prints the protocol ablation from a completed
/// [`protocol_ablation_sweep`] grid.
pub fn print_protocol_ablation_from(result: &SweepResult, runs: usize) {
    println!("ABLATION: REMOTE-GATE PROTOCOL (async_buf, {runs}-run averages)");
    for bench in [PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32] {
        for protocol in PROTOCOL_AXIS {
            let r = &result
                .cell(
                    &bench.to_string(),
                    &format!("{protocol:?}"),
                    Design::AsyncBuf,
                )
                .expect("protocol sweep covers every benchmark × protocol")
                .report;
            println!(
                "  {bench:<11} {:?}: depth {:>7.1}  fidelity {:.4}  ({} links/gate)",
                protocol,
                r.mean_depth,
                r.mean_fidelity,
                protocol.links_per_gate()
            );
        }
    }
}

/// Compares plain consumption against purify-on-consume (extension built
/// on the paper's citation \[53\]: purification trades entanglement rate
/// for link quality).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_purification_ablation(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_purification_ablation_from(&purification_ablation_sweep(runs, seed)?, runs);
    Ok(())
}

/// The sweep grid behind the purification ablation (config labels are
/// `false`/`true`).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn purification_ablation_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut sweep = Sweep::new()
        .benchmarks([PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32])
        .designs(&[Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for purify in [false, true] {
        let mut config = paper_config_32();
        config.purify_links = purify;
        sweep = sweep.config(format!("{purify}"), config);
    }
    sweep.run()
}

/// Prints the purification ablation from a completed
/// [`purification_ablation_sweep`] grid.
pub fn print_purification_ablation_from(result: &SweepResult, runs: usize) {
    println!("ABLATION: BBPSSW PURIFY-ON-CONSUME (async_buf, {runs}-run averages)");
    for bench in [PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32] {
        for purify in [false, true] {
            let r = &result
                .cell(&bench.to_string(), &format!("{purify}"), Design::AsyncBuf)
                .expect("purification sweep covers every benchmark × mode")
                .report;
            println!(
                "  {bench:<11} purify={purify:<5}: depth {:>7.1}  fidelity {:.4}",
                r.mean_depth, r.mean_fidelity
            );
        }
    }
}

/// Sweeps the adaptive segment size `m` (extension beyond the paper's
/// fixed `m = n_comm · psucc`).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_segment_ablation(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_segment_ablation_from(&segment_ablation_sweep(runs, seed)?, runs);
    Ok(())
}

/// The segment sizes swept by the segment ablation.
const SEGMENT_AXIS: [usize; 5] = [1, 2, 4, 8, 16];

/// The `(m, comm_qubits, config)` axis behind the segment ablation: comm
/// qubits are scaled so `m = ceil(comm · psucc)` hits each target size.
fn segment_axis() -> Vec<(usize, usize, SystemConfig)> {
    let base = paper_config_32();
    SEGMENT_AXIS
        .into_iter()
        .map(|m| {
            let mut config = base.clone();
            config.comm_qubits_per_node = (m as f64 / config.success_probability).ceil() as usize;
            config.buffer_qubits_per_node = config.comm_qubits_per_node;
            let comm = config.comm_qubits_per_node;
            (m, comm, config)
        })
        .collect()
}

/// The sweep grid behind the segment ablation (config labels are `m1`,
/// `m2`, …).
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn segment_ablation_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut sweep = Sweep::new()
        .benchmark(PaperBenchmark::Qft32)
        .designs(&[Design::AdaptBuf])
        .runs(runs)
        .base_seed(seed);
    for (m, _, config) in segment_axis() {
        sweep = sweep.config(format!("m{m}"), config);
    }
    sweep.run()
}

/// Prints the segment ablation from a completed
/// [`segment_ablation_sweep`] grid.
pub fn print_segment_ablation_from(result: &SweepResult, runs: usize) {
    println!("ABLATION: ADAPTIVE SEGMENT SIZE m (QFT-32, adapt_buf, {runs}-run averages)");
    println!(
        "  (paper default m = {})",
        SystemConfig::paper_two_node_32().segment_remote_gates()
    );
    for ((m, comm, _), cell) in segment_axis().into_iter().zip(&result.cells) {
        let r = &cell.report;
        println!(
            "  m = {:>2} (comm = {:>2}): depth {:>8.1}  fidelity {:.4}",
            m, comm, r.mean_depth, r.mean_fidelity
        );
    }
}

// -------------------------------------------------------- Backend matrix

/// The concrete engines compared by the backend matrix (`Auto` is a
/// selection policy, not a fourth engine, so it is not a column).
pub const BACKEND_MATRIX_BACKENDS: [Backend; 3] =
    [Backend::Analytic, Backend::Stabilizer, Backend::Density];

/// The circuits of the backend matrix: three Clifford-only 8-qubit
/// workloads — narrow enough for the density backend's
/// [`DENSITY_MAX_QUBITS`](dqc_core::DENSITY_MAX_QUBITS) oracle, Clifford
/// so the stabilizer fast path is eligible on all of them.
pub fn backend_matrix_circuits() -> Vec<(String, Circuit)> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BASE_SEED);
    vec![
        ("GHZ-chain-8".to_string(), dqc_workloads::ghz_chain(8)),
        ("GHZ-tree-8".to_string(), dqc_workloads::ghz_tree(8)),
        (
            "Clifford-8".to_string(),
            dqc_workloads::random_clifford(8, 120, 0.0, &mut rng),
        ),
    ]
}

/// The hardware point of the backend matrix: the paper machine scaled to
/// 4 data qubits per node, so the two-node system carries exactly the 8
/// data qubits the density backend can represent.
fn backend_matrix_config() -> SystemConfig {
    let mut config = SystemConfig::paper_two_node_32();
    config.data_qubits_per_node = 4;
    config
}

/// The sweep grid behind the backend matrix: every matrix circuit on
/// every concrete engine (config labels are the backend names). The
/// process-wide backend override is deliberately ignored — the whole
/// point of the target is to pin all engines against each other.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn backend_matrix_sweep(runs: usize, seed: u64) -> Result<SweepResult, DqcError> {
    let mut sweep = Sweep::new()
        .designs(&[Design::AsyncBuf])
        .runs(runs)
        .base_seed(seed);
    for (label, circuit) in backend_matrix_circuits() {
        sweep = sweep.circuit(label, circuit);
    }
    for backend in BACKEND_MATRIX_BACKENDS {
        sweep = sweep.config(
            backend.name(),
            backend_matrix_config().with_backend(backend),
        );
    }
    sweep.run()
}

/// Prints the backend matrix from a completed [`backend_matrix_sweep`]
/// grid.
pub fn print_backend_matrix_from(result: &SweepResult, runs: usize) {
    println!("BACKEND MATRIX (async_buf, 8 data qubits, {runs}-run averages)");
    for (label, _) in backend_matrix_circuits() {
        for backend in BACKEND_MATRIX_BACKENDS {
            let r = &result
                .cell(&label, backend.name(), Design::AsyncBuf)
                .expect("backend matrix covers every circuit × engine")
                .report;
            println!(
                "  {label:<12} {:<10}: depth {:>6.1}  fidelity {:.4}",
                backend.name(),
                r.mean_depth,
                r.mean_fidelity
            );
        }
    }
}

/// Runs the three-circuit × three-backend differential matrix.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
pub fn run_backend_matrix(runs: usize, seed: u64) -> Result<(), DqcError> {
    print_backend_matrix_from(&backend_matrix_sweep(runs, seed)?, runs);
    Ok(())
}

// ------------------------------------------------------ Serving portfolio

/// The mixed workload portfolio the serving layer is benchmarked on:
/// QAOA (both densities), QFT (two widths), and GHZ (chain and tree) —
/// six circuits of very different compile cost and remote-gate pressure,
/// all fitting the paper's 32-data-qubit two-node machine.
///
/// `serve-bench`, the `perf` harness's `serve_throughput` entries, and
/// the determinism-under-concurrency test all draw requests from this
/// portfolio, so their numbers describe the same traffic mix. Circuits
/// come wrapped in [`Arc`](std::sync::Arc): a load generator submits
/// each one many times without copying it.
pub fn serve_portfolio() -> Vec<(String, std::sync::Arc<Circuit>)> {
    use std::sync::Arc;
    vec![
        (
            PaperBenchmark::QaoaR4_32.to_string(),
            Arc::new(PaperBenchmark::QaoaR4_32.circuit()),
        ),
        (
            PaperBenchmark::QaoaR8_32.to_string(),
            Arc::new(PaperBenchmark::QaoaR8_32.circuit()),
        ),
        (
            PaperBenchmark::Qft32.to_string(),
            Arc::new(dqc_workloads::qft(32)),
        ),
        ("QFT-16".to_string(), Arc::new(dqc_workloads::qft(16))),
        (
            "GHZ-chain-32".to_string(),
            Arc::new(dqc_workloads::ghz_chain(32)),
        ),
        (
            "GHZ-tree-32".to_string(),
            Arc::new(dqc_workloads::ghz_tree(32)),
        ),
    ]
}

/// Builds a deterministic request list over [`serve_portfolio`]:
/// circuits tiled round-robin, `designs` rotated once per full portfolio
/// pass, and per-request seeds `base_seed + i` — a pure function of its
/// arguments, so every harness that needs "N portfolio requests" (the
/// `serve-bench` load generator, the `perf` serve entries, ad-hoc
/// experiments) gets the exact same traffic.
///
/// # Panics
///
/// Panics when `designs` is empty.
pub fn portfolio_requests(
    count: usize,
    runs: usize,
    base_seed: u64,
    point: &str,
    designs: &[Design],
) -> Vec<dqc_serve::EvalRequest> {
    assert!(!designs.is_empty(), "need at least one design");
    let portfolio = serve_portfolio();
    (0..count)
        .map(|i| {
            let (label, circuit) = &portfolio[i % portfolio.len()];
            dqc_serve::EvalRequest::new(
                label.clone(),
                std::sync::Arc::clone(circuit),
                point,
                designs[(i / portfolio.len()) % designs.len()],
            )
            .runs(runs)
            .base_seed(base_seed + i as u64)
        })
        .collect()
}

/// The portfolio index of the hot circuit [`skewed_requests`] duplicates:
/// QFT-32, the portfolio's heaviest replay (256 remote gates), so the
/// runs fusion saves are the runs that actually cost something.
const SKEW_HOT: usize = 2;

/// Builds the duplicate-heavy request list the fusion benchmark serves:
/// most requests are the *same* evaluation (the portfolio's QFT-32,
/// same design, same base seed — the traffic shape of many tenants
/// asking one popular question), with every `cold_every`-th request a
/// distinct background evaluation drawn from the rest of the portfolio.
/// Cross-request replay fusion coalesces the duplicates that land in
/// one worker batch into a single replay; the unfused server re-runs
/// every one. Pure function of its arguments, like
/// [`portfolio_requests`].
///
/// `cold_every = 0` makes every request the hot duplicate.
pub fn skewed_requests(
    count: usize,
    runs: usize,
    base_seed: u64,
    point: &str,
    cold_every: usize,
) -> Vec<dqc_serve::EvalRequest> {
    let portfolio = serve_portfolio();
    (0..count)
        .map(|i| {
            let cold = cold_every > 0 && (i + 1) % cold_every == 0;
            if cold {
                let offset = (i / cold_every) % (portfolio.len() - 1);
                let (label, circuit) = &portfolio[(SKEW_HOT + 1 + offset) % portfolio.len()];
                dqc_serve::EvalRequest::new(
                    label.clone(),
                    std::sync::Arc::clone(circuit),
                    point,
                    Design::AsyncBuf,
                )
                .runs(runs)
                .base_seed(base_seed + i as u64)
            } else {
                let (label, circuit) = &portfolio[SKEW_HOT];
                dqc_serve::EvalRequest::new(
                    label.clone(),
                    std::sync::Arc::clone(circuit),
                    point,
                    Design::AdaptBuf,
                )
                .runs(runs)
                .base_seed(base_seed)
            }
        })
        .collect()
}

/// Builds the migrating-hot-spot request list the autoscale benchmark
/// serves: portfolio circuits tiled round-robin, but with the *traffic*
/// skewed `skew − 1 : 1` toward `points.0` for the first half of the
/// list and toward `points.1` for the second — a load step that moves
/// the pressure from one shard to the other mid-run. A queue-aware
/// autoscaler follows the hot spot; a static even split leaves workers
/// idle on the cold shard. Pure function of its arguments.
///
/// # Panics
///
/// Panics when `skew < 2` (no minority slot to send to the cold shard).
pub fn migrating_requests(
    count: usize,
    runs: usize,
    base_seed: u64,
    points: (&str, &str),
    skew: usize,
) -> Vec<dqc_serve::EvalRequest> {
    assert!(skew >= 2, "skew must leave a minority share");
    let portfolio = serve_portfolio();
    (0..count)
        .map(|i| {
            let first_half = i < count / 2;
            let minority = (i + 1) % skew == 0;
            let point = if first_half != minority {
                points.0
            } else {
                points.1
            };
            let (label, circuit) = &portfolio[i % portfolio.len()];
            dqc_serve::EvalRequest::new(
                label.clone(),
                std::sync::Arc::clone(circuit),
                point,
                Design::AsyncBuf,
            )
            .runs(runs)
            .base_seed(base_seed + i as u64)
        })
        .collect()
}

/// Drives `requests` through `server` as a closed-loop client: up to
/// `window` requests stay in flight, and a new one is submitted the
/// moment a response arrives. Returns `(completed, engine_errors)`.
///
/// This is the one canonical closed-loop pump — `serve-bench` and the
/// `perf` harness both measure through it, so their "closed loop" means
/// the same client behavior. `window` is clamped to at least 1; callers
/// must keep it at or below the server's queue capacity, otherwise
/// submission can hit admission control and the error propagates.
///
/// # Errors
///
/// Propagates the first [`dqc_serve::ServeError`] returned by
/// [`dqc_serve::Server::submit`].
pub fn pump_closed_loop(
    server: &dqc_serve::Server,
    responses: &std::sync::mpsc::Receiver<dqc_serve::EvalResponse>,
    requests: impl IntoIterator<Item = dqc_serve::EvalRequest>,
    window: usize,
) -> Result<(usize, usize), dqc_serve::ServeError> {
    let window = window.max(1);
    let mut pending = requests.into_iter();
    let mut in_flight = 0usize;
    let mut completed = 0usize;
    let mut errors = 0usize;
    loop {
        while in_flight < window {
            let Some(request) = pending.next() else { break };
            server.submit(request)?;
            in_flight += 1;
        }
        if in_flight == 0 {
            return Ok((completed, errors));
        }
        let response = responses.recv().expect("server streams responses");
        errors += usize::from(response.outcome.is_err());
        completed += 1;
        in_flight -= 1;
    }
}

/// Drives `requests` through a `dqc-served` daemon as a closed-loop
/// **wire** client: the same client model as [`pump_closed_loop`], but
/// every request travels the full TCP frame protocol through a
/// [`ServedClient`](dqc_served::ServedClient). Returns
/// `(completed, rejected, errors)` — `rejected` counts typed
/// backpressure refusals (`overloaded` / `quota_exceeded`), `errors`
/// everything else that came back as a per-request error.
///
/// With `as_qasm` the circuits are serialized to OpenQASM 2.0 text and
/// re-parsed by the daemon (the QASM front door); otherwise they travel
/// as structured JSON. Either way the daemon sees fingerprint-identical
/// circuits, so cache behavior matches the in-process pump.
///
/// `serve-bench --wire` and the CI `served-smoke` job both measure
/// through this loop, mirroring how [`pump_closed_loop`] anchors the
/// in-process numbers.
///
/// # Errors
///
/// Propagates the first transport-level
/// [`dqc_served::ClientError`]; per-request refusals are counted, not
/// errors.
pub fn pump_closed_loop_wire(
    client: &mut dqc_served::ServedClient,
    requests: impl IntoIterator<Item = dqc_serve::EvalRequest>,
    window: usize,
    as_qasm: bool,
) -> Result<(usize, usize, usize), dqc_served::ClientError> {
    let window = window.max(1);
    let mut pending = requests.into_iter().map(|request| {
        let submission = if as_qasm {
            dqc_served::Submission::qasm(
                request.circuit_label.clone(),
                dqc_circuit::to_qasm(&request.circuit),
                request.point.clone(),
                request.design,
            )
        } else {
            dqc_served::Submission::from_request(&request)
        };
        submission.runs(request.runs).base_seed(request.base_seed)
    });
    let mut in_flight = 0usize;
    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut errors = 0usize;
    loop {
        while in_flight < window {
            let Some(submission) = pending.next() else {
                break;
            };
            client.submit(&submission)?;
            in_flight += 1;
        }
        if in_flight == 0 {
            return Ok((completed, rejected, errors));
        }
        let reply = client.recv_reply()?;
        in_flight -= 1;
        match reply.outcome {
            Ok(_) => completed += 1,
            Err(e) if e.is_backpressure() => rejected += 1,
            Err(_) => errors += 1,
        }
    }
}

/// Serves `requests` sequentially with one **fresh compilation per
/// request** — the no-cache, single-worker reference both `serve-bench`
/// and the `perf` harness compare the serving layer against. Keeping the
/// loop here (next to [`pump_closed_loop`]) guarantees the two harnesses'
/// speedup metrics are measured against the same baseline behavior.
///
/// # Errors
///
/// Propagates the first [`DqcError`] from compilation or execution.
pub fn run_sequential_baseline(
    requests: &[dqc_serve::EvalRequest],
    config: &SystemConfig,
) -> Result<(), DqcError> {
    for request in requests {
        let compiled = dqc_core::CompiledCircuit::compile(&request.circuit, config)?;
        for i in 0..request.runs {
            compiled.run(request.design, request.base_seed.wrapping_add(i as u64))?;
        }
    }
    Ok(())
}

// ------------------------------------------------------- Static analysis

/// The corpus the `analyze` repro target audits: every paper benchmark
/// against its matching hardware point, the default serving
/// configuration, and a 12-request portfolio audit — everything the
/// repo ships, proven clean by the static analyzer on every CI run.
/// Fully deterministic (no simulation happens), so the payload diffs
/// exactly against its golden file.
pub fn analyze_data() -> Json {
    let analyzer = dqc_analyze::Analyzer::new();
    let mut subjects: Vec<Json> = Vec::new();
    for bench in PaperBenchmark::ALL {
        let (point, config) = match bench.num_qubits() {
            32 => ("paper32", SystemConfig::paper_two_node_32()),
            _ => ("paper64", SystemConfig::paper_two_node_64()),
        };
        let report = analyzer.analyze_circuit(&bench.to_string(), &bench.circuit(), &config);
        subjects.push(analyze_subject(&bench.to_string(), point, &report));
    }
    let serve_config = dqc_serve::ServeConfig::default();
    subjects.push(analyze_subject(
        "default ServeConfig",
        "-",
        &analyzer.analyze_serve_config(&serve_config),
    ));
    let requests = portfolio_requests(12, 1, BASE_SEED, "paper", &[Design::AdaptBuf]);
    let items: Vec<dqc_analyze::PortfolioItem<'_>> = requests
        .iter()
        .map(|r| dqc_analyze::PortfolioItem {
            label: &r.circuit_label,
            circuit: r.circuit.as_ref(),
            point: &r.point,
            design: r.design,
        })
        .collect();
    subjects.push(analyze_subject(
        "serve portfolio (12 requests)",
        "paper",
        &analyzer.analyze_portfolio(&items, &serve_config),
    ));
    Json::Array(subjects)
}

/// One row of the `analyze` payload.
fn analyze_subject(label: &str, point: &str, report: &dqc_analyze::AnalysisReport) -> Json {
    Json::object([
        ("label", Json::from(label)),
        ("point", Json::from(point)),
        ("report", report.to_json()),
    ])
}

/// Prints the static-analysis audit of the shipped corpus.
pub fn run_analyze(_runs: usize, _seed: u64) -> Result<(), DqcError> {
    println!("STATIC ANALYSIS (shipped corpus, no execution)");
    for subject in analyze_data().as_array().expect("analyze payload is rows") {
        let label = subject.str_field("label").expect("row has a label");
        let report = dqc_analyze::AnalysisReport::from_json(
            subject.field("report").expect("row has a report"),
        )
        .expect("payload reports are well-formed");
        let (errors, warnings) = report.counts();
        if report.is_clean() {
            println!("  {label:<28} clean");
        } else {
            println!("  {label:<28} {errors} error(s), {warnings} warning(s)");
            for diagnostic in report.diagnostics() {
                println!("    {diagnostic}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_for_deterministic_benchmarks() {
        let rows = table1_data();
        let tlim = rows.iter().find(|r| r.name == "TLIM-32").unwrap();
        assert_eq!(tlim.local_2q, 300);
        assert_eq!(tlim.remote_2q, 10);
        assert_eq!(tlim.one_q, 640);
        assert_eq!(tlim.depth, 40);
        let qft = rows.iter().find(|r| r.name == "QFT-32").unwrap();
        assert_eq!(qft.local_2q, 240);
        assert_eq!(qft.remote_2q, 256);
        assert_eq!(qft.depth, 63);
    }

    #[test]
    fn fig3_sync_is_burstier_than_async() {
        let sync = fig3_data(GenerationPattern::Synchronous, 20, 1);
        let asyn = fig3_data(GenerationPattern::Asynchronous { groups: 10 }, 20, 1);
        let occupied = |h: &[usize]| h.iter().filter(|c| **c > 0).count();
        assert!(
            occupied(&asyn) > 2 * occupied(&sync),
            "async arrivals spread over many more buckets: {} vs {}",
            occupied(&asyn),
            occupied(&sync)
        );
        let peak = |h: &[usize]| h.iter().copied().max().unwrap_or(0);
        assert!(peak(&sync) > peak(&asyn), "sync peaks higher");
    }

    #[test]
    fn design_sweep_produces_one_report_per_design() {
        let config = SystemConfig::paper_two_node_32();
        let reports = design_sweep(PaperBenchmark::Tlim32, &config, &Design::ALL, 2, 0).unwrap();
        assert_eq!(reports.len(), Design::ALL.len());
        assert!(reports.iter().all(|r| r.runs == 2));
    }

    #[test]
    fn fig56_sweep_compiles_once_per_benchmark() {
        let result = fig56_sweep(1, 0).unwrap();
        assert_eq!(result.compilations, PaperBenchmark::FIG5.len());
        assert_eq!(
            result.cells.len(),
            PaperBenchmark::FIG5.len() * Design::ALL.len()
        );
    }

    #[test]
    fn topology_sweep_orders_fidelity_by_connectivity() {
        // The acceptance ordering: on the remote-heavy benchmark a chain
        // pays the most swap chains, a grid fewer, the complete graph
        // none — so end-to-end fidelity must rise with connectivity.
        let result = topology_sweep(4, 4, BASE_SEED).unwrap();
        let fidelity = |config: &str| {
            result
                .cell(
                    &PaperBenchmark::QaoaR8_32.to_string(),
                    config,
                    Design::AsyncBuf,
                )
                .unwrap()
                .report
                .mean_fidelity
        };
        let (chain, grid, full) = (fidelity("chain"), fidelity("grid"), fidelity("all_to_all"));
        assert!(chain < grid, "chain {chain} must trail grid {grid}");
        assert!(grid < full, "grid {grid} must trail all-to-all {full}");
    }

    #[test]
    fn two_node_topologies_coincide() {
        // Every 2-node family is the single edge, so all four configs
        // must produce identical reports.
        let result = topology_sweep(2, 2, 7).unwrap();
        let first = &result.cells[0].report;
        for cell in &result.cells[1..] {
            assert_eq!(&cell.report, first, "{}", cell.config);
        }
    }

    #[test]
    fn skewed_requests_are_mostly_one_hot_duplicate() {
        let requests = skewed_requests(16, 2, 99, "paper", 4);
        let hot = &requests[0];
        let duplicates = requests
            .iter()
            .filter(|r| {
                r.circuit_label == hot.circuit_label
                    && r.base_seed == hot.base_seed
                    && r.design == hot.design
            })
            .count();
        assert_eq!(duplicates, 12, "3 of every 4 requests are the hot one");
        let cold: Vec<_> = requests
            .iter()
            .filter(|r| r.circuit_label != hot.circuit_label)
            .collect();
        assert_eq!(cold.len(), 4);
        // Background requests never collide in seed, so they can't fuse.
        for pair in cold.windows(2) {
            assert_ne!(pair[0].base_seed, pair[1].base_seed);
        }
    }

    #[test]
    fn migrating_requests_flip_the_majority_point_at_half() {
        let requests = migrating_requests(32, 1, 7, ("east", "west"), 4);
        let east_first = requests[..16].iter().filter(|r| r.point == "east").count();
        let east_second = requests[16..].iter().filter(|r| r.point == "east").count();
        assert_eq!(east_first, 12, "first half skews 3:1 toward east");
        assert_eq!(east_second, 4, "second half skews 3:1 toward west");
    }

    #[test]
    fn sweep_panels_match_design_sweep() {
        // The Sweep-based figure path and the Experiment-based panel path
        // must agree exactly: same engine, same seeds.
        let result = fig56_sweep(2, 7).unwrap();
        let config = SystemConfig::paper_two_node_32();
        for bench in PaperBenchmark::FIG5 {
            let direct = design_sweep(bench, &config, &Design::ALL, 2, 7).unwrap();
            let from_sweep = panel_reports(&result, bench, "paper");
            assert_eq!(direct, from_sweep, "{bench}");
        }
    }
}
