//! Machine-readable result artifacts: one JSON document per repro target.
//!
//! Every reproduction target (`table1` … `ablate-purification`) can emit
//! its numbers as an [`Artifact`] — a stable envelope around the
//! target-specific payload — via [`target_data`]. CI runs the targets at
//! fixed `--runs`/`--seed`, writes the artifacts, and gates them against
//! the committed golden files under `tests/golden/` with `repro diff`;
//! the same envelope is what `tests/golden_regression.rs` rebuilds
//! in-process.
//!
//! The envelope is versioned ([`SCHEMA_VERSION`]) so a deliberate schema
//! change (bump) is distinguishable from accidental drift (diff failure).

use dqc_core::{DqcError, SystemConfig};
use dqc_types::{Json, JsonError};

/// Version of the artifact envelope and of every payload schema below it.
/// Bump when a serialized field is added, removed, or re-interpreted, and
/// regenerate the golden files in the same commit.
pub const SCHEMA_VERSION: u32 = 1;

/// The names of every target that can emit a JSON artifact, in `repro`'s
/// execution order.
const TARGET_NAMES: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig5",
    "fig6",
    "fig56",
    "fig7",
    "fig8",
    "topology-sweep",
    "codesign",
    "ablate-cutoff",
    "ablate-psucc",
    "ablate-segment",
    "ablate-protocol",
    "ablate-purification",
    "backend-matrix",
    "analyze",
];

/// The names of every target that can emit a JSON artifact.
pub fn target_names() -> &'static [&'static str] {
    TARGET_NAMES
}

/// One serialized run of one repro target: the payload from
/// [`target_data`] plus the provenance needed to regenerate it exactly
/// (target name, run count, base seed) and the schema version needed to
/// compare it safely.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The repro target that produced the payload.
    pub target: String,
    /// Seeded runs averaged per cell.
    pub runs: usize,
    /// Base seed of the run (see [`crate::BASE_SEED`]).
    pub seed: u64,
    /// The target-specific payload.
    pub data: Json,
}

impl Artifact {
    /// Computes the artifact for `target` by running it.
    ///
    /// # Errors
    ///
    /// Propagates [`DqcError`] from the engine.
    ///
    /// # Panics
    ///
    /// Panics when `target` is not one of [`target_names`]; the CLI
    /// validates names before dispatching here.
    pub fn build(target: &str, runs: usize, seed: u64) -> Result<Self, DqcError> {
        Ok(Self {
            target: target.to_string(),
            runs,
            seed,
            data: target_data(target, runs, seed)?,
        })
    }

    /// The conventional file name for this artifact: `<target>.json`.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.target)
    }

    /// Serializes the envelope plus payload.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema_version", Json::Int(i64::from(SCHEMA_VERSION))),
            ("target", Json::from(self.target.as_str())),
            ("runs", Json::from(self.runs)),
            ("seed", Json::uint(self.seed)),
            ("data", self.data.clone()),
        ])
    }

    /// The pretty-printed document written to disk.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Reads an artifact back from [`Artifact::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on a missing or mistyped field, or when the
    /// document was written under a different [`SCHEMA_VERSION`].
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let version = json.u64_field("schema_version")?;
        if version != u64::from(SCHEMA_VERSION) {
            return Err(JsonError::schema(format!(
                "artifact schema version {version} (this binary understands {SCHEMA_VERSION})"
            )));
        }
        Ok(Self {
            target: json.str_field("target")?.to_string(),
            runs: json.usize_field("runs")?,
            seed: json.u64_field("seed")?,
            data: json.field("data")?.clone(),
        })
    }

    /// Parses an artifact from document text.
    ///
    /// # Errors
    ///
    /// [`JsonError::Parse`] on invalid JSON, [`JsonError::Schema`] on a
    /// valid document with the wrong shape.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Computes the JSON payload of one repro target — the data behind the
/// corresponding `print_*` rendering, serialized instead of printed.
///
/// `fig5`, `fig6`, and `fig56` share one payload (the combined Fig. 5/6
/// sweep grid): the figures are two renderings of the same experiments.
///
/// # Errors
///
/// Propagates [`DqcError`] from the engine.
///
/// # Panics
///
/// Panics when `target` is not one of [`target_names`]; the CLI validates
/// names before dispatching here.
pub fn target_data(target: &str, runs: usize, seed: u64) -> Result<Json, DqcError> {
    Ok(match target {
        "table1" => Json::Array(
            crate::table1_data()
                .iter()
                .map(crate::Table1Row::to_json)
                .collect(),
        ),
        "table2" => crate::table2_data(&SystemConfig::paper_two_node_32()).to_json(),
        "fig3" => crate::fig3_histograms(10, seed).to_json(),
        "fig5" | "fig6" | "fig56" => crate::fig56_sweep(runs, seed)?.to_json(),
        "fig7" => crate::fig7_sweep(runs, seed)?.to_json(),
        "fig8" => crate::fig8_sweep(runs, seed)?.to_json(),
        "topology-sweep" => Json::Array(
            crate::topology_sweep_all(runs, seed)?
                .iter()
                .map(|(nodes, result)| {
                    Json::object([("nodes", Json::from(*nodes)), ("result", result.to_json())])
                })
                .collect(),
        ),
        "codesign" => crate::codesign_search(runs, seed)?.to_json(),
        "ablate-cutoff" => crate::cutoff_ablation_sweep(runs, seed)?.to_json(),
        "ablate-psucc" => crate::psucc_ablation_sweep(runs, seed)?.to_json(),
        "ablate-segment" => crate::segment_ablation_sweep(runs, seed)?.to_json(),
        "ablate-protocol" => crate::protocol_ablation_sweep(runs, seed)?.to_json(),
        "ablate-purification" => crate::purification_ablation_sweep(runs, seed)?.to_json(),
        "backend-matrix" => crate::backend_matrix_sweep(runs, seed)?.to_json(),
        "analyze" => crate::analyze_data(),
        other => panic!("unknown artifact target `{other}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_types::json;

    #[test]
    fn envelope_round_trips_through_text() {
        let artifact = Artifact {
            target: "table1".to_string(),
            runs: 2,
            seed: 2025,
            data: Json::Array(vec![Json::Int(1)]),
        };
        let back = Artifact::parse(&artifact.to_pretty_string()).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.file_name(), "table1.json");
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let mut doc = Artifact {
            target: "table1".to_string(),
            runs: 1,
            seed: 0,
            data: Json::Null,
        }
        .to_json();
        if let Json::Object(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "schema_version" {
                    *v = Json::Int(99);
                }
            }
        }
        let err = Artifact::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("schema version 99"), "{err}");
    }

    #[test]
    fn cheap_targets_build_diffable_artifacts() {
        // The fully deterministic targets are fast enough to build in a
        // unit test; sweep-heavy targets are covered by the golden
        // regression integration test.
        for target in ["table1", "table2", "fig3"] {
            let artifact = Artifact::build(target, 1, 7).unwrap();
            let reparsed = Artifact::parse(&artifact.to_pretty_string()).unwrap();
            assert!(
                json::diff(&artifact.to_json(), &reparsed.to_json(), 0.0).is_empty(),
                "{target} must survive a write/parse cycle exactly"
            );
        }
    }

    #[test]
    fn table1_artifact_rows_parse_back() {
        let artifact = Artifact::build("table1", 1, 0).unwrap();
        let rows: Vec<crate::Table1Row> = artifact
            .data
            .as_array()
            .unwrap()
            .iter()
            .map(|r| crate::Table1Row::from_json(r).unwrap())
            .collect();
        assert_eq!(rows, crate::table1_data());
    }

    #[test]
    fn every_named_target_is_dispatchable() {
        // Compile-time-ish guard: the dispatch match and the name list
        // stay in sync. Running every sweep here would be slow, so this
        // only checks that no listed name panics as unknown for the
        // cheap, deterministic subset and that the list is non-empty.
        assert!(target_names().contains(&"table1"));
        assert!(target_names().contains(&"ablate-purification"));
    }
}
