//! Fig. 5: circuit depth across designs and 32-qubit benchmarks.
//!
//! Times the engine's two halves separately — `CompiledCircuit::compile`
//! (once per circuit × config) and `CompiledCircuit::run` (once per seed)
//! — then prints the regenerated depth series (10-run averages; use the
//! `repro` binary with `--runs 50` for the paper's averaging).

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::{CompiledCircuit, Design, SystemConfig};
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let config = SystemConfig::paper_two_node_32();
    let mut group = c.benchmark_group("fig5/compile");
    for bench in PaperBenchmark::FIG5 {
        let circuit = bench.circuit();
        group.bench_function(bench.to_string(), |b| {
            b.iter(|| black_box(CompiledCircuit::compile(&circuit, &config).expect("compiles")));
        });
    }
    group.finish();
}

fn bench_designs(c: &mut Criterion) {
    let config = SystemConfig::paper_two_node_32();
    for bench in PaperBenchmark::FIG5 {
        let compiled = CompiledCircuit::compile(&bench.circuit(), &config).expect("compiles");
        let mut group = c.benchmark_group(format!("fig5/run/{bench}"));
        for design in Design::ALL {
            group.bench_function(design.name(), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(compiled.run(design, seed).expect("evaluates"))
                });
            });
        }
        group.finish();
    }
}

fn print_figure(_c: &mut Criterion) {
    dqc_bench::run_fig5(10, dqc_bench::BASE_SEED).expect("fig5 series");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_designs, print_figure
}
criterion_main!(benches);
