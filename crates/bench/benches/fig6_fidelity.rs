//! Fig. 6: output fidelity across designs and 32-qubit benchmarks.
//!
//! Times the fidelity-bearing pipeline (teleportation fidelity table
//! construction plus one executor run) and prints the regenerated
//! fidelity series.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::{CompiledCircuit, Design, OperationFidelities, RemoteFidelityTable, SystemConfig};
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_remote_fidelity_table(c: &mut Criterion) {
    c.bench_function("fig6/remote_fidelity_table", |b| {
        b.iter(|| black_box(RemoteFidelityTable::new(&OperationFidelities::default())));
    });
}

fn bench_fidelity_runs(c: &mut Criterion) {
    let config = SystemConfig::paper_two_node_32();
    let mut group = c.benchmark_group("fig6/evaluate");
    for bench in [PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32] {
        let compiled = CompiledCircuit::compile(&bench.circuit(), &config).expect("compiles");
        group.bench_function(bench.to_string(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(
                    compiled
                        .run(Design::AdaptBuf, seed)
                        .expect("evaluates")
                        .fidelity,
                )
            });
        });
    }
    group.finish();
}

fn print_figure(_c: &mut Criterion) {
    dqc_bench::run_fig6(10, dqc_bench::BASE_SEED).expect("fig6 series");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_remote_fidelity_table, bench_fidelity_runs, print_figure
}
criterion_main!(benches);
