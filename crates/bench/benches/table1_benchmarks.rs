//! Table I: benchmark generation and 2-node partitioning.
//!
//! Times the circuit generators and the METIS-style partitioner that
//! together produce every row of Table I, then prints the regenerated
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_partition::partition_circuit;
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/generate");
    for bench in PaperBenchmark::ALL {
        group.bench_function(bench.to_string(), |b| {
            b.iter(|| black_box(bench.circuit()));
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/partition");
    for bench in PaperBenchmark::ALL {
        let circuit = bench.circuit();
        group.bench_function(bench.to_string(), |b| {
            b.iter(|| black_box(partition_circuit(&circuit, 2, 7).expect("partitions")));
        });
    }
    group.finish();
}

fn print_table(_c: &mut Criterion) {
    dqc_bench::print_table1(&dqc_bench::table1_data());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_partitioning, print_table
}
criterion_main!(benches);
