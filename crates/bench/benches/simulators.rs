//! Substrate bench: the quantum simulation engines.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_sim::{
    state_teleportation_fidelity, teleported_cnot_fidelity, Statevector, Tableau, TeleportNoise,
};
use dqc_workloads::{qft_with_swaps, random_clifford};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_statevector_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/statevector_qft");
    for n in [8u32, 12, 16] {
        let circuit = qft_with_swaps(n);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                let mut sv = Statevector::zero_state(n);
                sv.apply_circuit(&circuit).expect("unitary circuit");
                black_box(sv.norm_sqr())
            });
        });
    }
    group.finish();
}

fn bench_teleport_fidelity(c: &mut Criterion) {
    c.bench_function("sim/teleported_cnot_fidelity", |b| {
        b.iter(|| black_box(teleported_cnot_fidelity(&TeleportNoise::table_ii())));
    });
    c.bench_function("sim/state_teleportation_fidelity", |b| {
        b.iter(|| black_box(state_teleportation_fidelity(&TeleportNoise::table_ii())));
    });
}

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/tableau");
    for n in [16u32, 64, 128] {
        let circuit = random_clifford(n, 10 * n, 0.0, &mut ChaCha8Rng::seed_from_u64(9));
        group.bench_function(format!("clifford_n{n}"), |b| {
            b.iter(|| {
                let mut t = Tableau::new(n as usize);
                for op in circuit.operations() {
                    t.apply(op).expect("clifford only");
                }
                black_box(t.num_qubits())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_statevector_qft, bench_teleport_fidelity, bench_tableau
}
criterion_main!(benches);
