//! Fig. 8: the 64-qubit two-node system on QAOA-r4-64 / QAOA-r8-64.
//!
//! Times executor runs on the larger system and prints the regenerated
//! depth comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::{CompiledCircuit, Design, SystemConfig};
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_larger_system(c: &mut Criterion) {
    let config = SystemConfig::paper_two_node_64();
    for bench in PaperBenchmark::FIG8 {
        let compiled = CompiledCircuit::compile(&bench.circuit(), &config).expect("compiles");
        let mut group = c.benchmark_group(format!("fig8/{bench}"));
        for design in [Design::Original, Design::SyncBuf, Design::InitBuf] {
            group.bench_function(design.name(), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(compiled.run(design, seed).expect("evaluates"))
                });
            });
        }
        group.finish();
    }
}

fn print_figure(_c: &mut Criterion) {
    dqc_bench::run_fig8(10, dqc_bench::BASE_SEED).expect("fig8 series");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_larger_system, print_figure
}
criterion_main!(benches);
