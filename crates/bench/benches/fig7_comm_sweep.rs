//! Fig. 7: QAOA-r8-32 depth as communication/buffer qubits scale.
//!
//! Times executor runs at 10/15/20 communication qubits and prints the
//! regenerated sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::{CompiledCircuit, Design, SystemConfig};
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let mut group = c.benchmark_group("fig7/comm_qubits");
    for n in [10usize, 15, 20] {
        let config = SystemConfig::paper_two_node_32().with_comm_and_buffer(n);
        let compiled = CompiledCircuit::compile(&circuit, &config).expect("compiles");
        group.bench_function(format!("init_buf/comm{n}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(compiled.run(Design::InitBuf, seed).expect("evaluates"))
            });
        });
    }
    group.finish();
}

fn print_figure(_c: &mut Criterion) {
    dqc_bench::run_fig7(10, dqc_bench::BASE_SEED).expect("fig7 series");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep, print_figure
}
criterion_main!(benches);
