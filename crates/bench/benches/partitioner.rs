//! Substrate bench: the METIS-style multilevel partitioner.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_partition::{partition_graph, Graph};
use dqc_workloads::random_regular_graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn regular_graph(n: usize, d: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let edges = random_regular_graph(n, d, &mut rng).expect("valid parameters");
    let mut g = Graph::new(n);
    for (a, b) in edges {
        g.add_edge(a, b, 1);
    }
    g
}

fn bench_bisection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner/bisect");
    for (n, d) in [(32usize, 4usize), (64, 8), (128, 8), (256, 8)] {
        let g = regular_graph(n, d);
        group.bench_function(format!("n{n}_d{d}"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                black_box(partition_graph(&g, 2, 0, &mut rng).expect("partitions"))
            });
        });
    }
    group.finish();
}

fn bench_kway(c: &mut Criterion) {
    let g = regular_graph(128, 8);
    let mut group = c.benchmark_group("partitioner/kway");
    for k in [2usize, 4, 8] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                black_box(partition_graph(&g, k, 0, &mut rng).expect("partitions"))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bisection_scaling, bench_kway
}
criterion_main!(benches);
