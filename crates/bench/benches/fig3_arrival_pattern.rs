//! Fig. 3: synchronous vs asynchronous arrival patterns.
//!
//! Times the entanglement service under both generation patterns and
//! prints the regenerated arrival histograms.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_bench::fig3_data;
use dqc_entanglement::GenerationPattern;
use std::hint::black_box;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/arrivals");
    for (label, pattern) in [
        ("synchronous", GenerationPattern::Synchronous),
        (
            "asynchronous",
            GenerationPattern::Asynchronous { groups: 10 },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(fig3_data(pattern, 50, 3)));
        });
    }
    group.finish();
}

fn print_figure(_c: &mut Criterion) {
    dqc_bench::print_fig3(dqc_bench::BASE_SEED);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_patterns, print_figure
}
criterion_main!(benches);
