//! Ablation benches for the design knobs DESIGN.md calls out: buffer
//! cutoff age, attempt success probability, and adaptive segment size.

use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::{CompiledCircuit, Design, SystemConfig};
use dqc_entanglement::CutoffPolicy;
use dqc_types::Tick;
use dqc_workloads::PaperBenchmark;
use std::hint::black_box;

fn bench_cutoff(c: &mut Criterion) {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let mut group = c.benchmark_group("ablation/cutoff");
    for cutoff in [100i64, 150, 500] {
        let mut config = SystemConfig::paper_two_node_32();
        config.cutoff = CutoffPolicy::MaxAge(Tick::new(cutoff));
        let compiled = CompiledCircuit::compile(&circuit, &config).expect("compiles");
        group.bench_function(format!("{cutoff}t"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(compiled.run(Design::AsyncBuf, seed).expect("evaluates"))
            });
        });
    }
    group.finish();
}

fn bench_psucc(c: &mut Criterion) {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let mut group = c.benchmark_group("ablation/psucc");
    for psucc in [0.2f64, 0.4, 0.8] {
        let mut config = SystemConfig::paper_two_node_32();
        config.success_probability = psucc;
        let compiled = CompiledCircuit::compile(&circuit, &config).expect("compiles");
        group.bench_function(format!("p{psucc}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(compiled.run(Design::AsyncBuf, seed).expect("evaluates"))
            });
        });
    }
    group.finish();
}

fn print_ablations(_c: &mut Criterion) {
    dqc_bench::run_cutoff_ablation(10, dqc_bench::BASE_SEED).expect("cutoff ablation");
    dqc_bench::run_psucc_ablation(10, dqc_bench::BASE_SEED).expect("psucc ablation");
    dqc_bench::run_segment_ablation(5, dqc_bench::BASE_SEED).expect("segment ablation");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cutoff, bench_psucc, print_ablations
}
criterion_main!(benches);
