//! Mapping circuit qubits onto QPU nodes.

use crate::{partition_graph, Graph, PartitionError};
use dqc_circuit::{Circuit, Operation};
use dqc_types::{NodeId, QubitId};
use rand::SeedableRng;

/// An assignment of every circuit qubit to a QPU node.
///
/// The paper's baseline (§IV-A) obtains this map with the METIS solver to
/// minimize the number of remote operations; [`partition_circuit`] plays
/// that role here using the workspace's own multilevel partitioner.
///
/// # Examples
///
/// ```
/// use dqc_partition::QubitMap;
/// use dqc_types::{NodeId, QubitId};
///
/// let map = QubitMap::contiguous(8, 2);
/// assert_eq!(map.node_of(QubitId::new(0)), NodeId::new(0));
/// assert_eq!(map.node_of(QubitId::new(7)), NodeId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitMap {
    nodes: Vec<NodeId>,
    num_nodes: usize,
}

impl QubitMap {
    /// Builds a map from explicit per-qubit part ids.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes` is zero or an id is out of range.
    pub fn from_assignment(assignment: &[u32], num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        let nodes = assignment
            .iter()
            .map(|&p| {
                assert!((p as usize) < num_nodes, "part id {p} out of range");
                NodeId::new(p as u16)
            })
            .collect();
        Self { nodes, num_nodes }
    }

    /// The trivial block mapping: the first `n/k` qubits on node 0, the
    /// next block on node 1, and so on (remainder spread over the first
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes` is zero.
    pub fn contiguous(num_qubits: u32, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        let per = (num_qubits as usize).div_ceil(num_nodes);
        let nodes = (0..num_qubits)
            .map(|q| NodeId::new((q as usize / per) as u16))
            .collect();
        Self { nodes, num_nodes }
    }

    /// Number of qubits mapped.
    pub fn num_qubits(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes in the system.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The node hosting `qubit`.
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn node_of(&self, qubit: QubitId) -> NodeId {
        self.nodes[qubit.as_usize()]
    }

    /// Returns true when the operation spans two nodes (a remote gate).
    pub fn is_remote(&self, op: &Operation) -> bool {
        match op.qubits() {
            [a, b] => self.node_of(*a) != self.node_of(*b),
            _ => false,
        }
    }

    /// Counts the remote two-qubit gates of a circuit under this map —
    /// the paper's Table I "#remote 2Q" column.
    pub fn count_remote(&self, circuit: &Circuit) -> usize {
        circuit
            .operations()
            .iter()
            .filter(|op| self.is_remote(op))
            .count()
    }

    /// Counts the local two-qubit gates — Table I's "#local 2Q" column.
    pub fn count_local_2q(&self, circuit: &Circuit) -> usize {
        circuit
            .operations()
            .iter()
            .filter(|op| op.gate().is_two_qubit() && !self.is_remote(op))
            .count()
    }

    /// Qubits hosted by each node.
    pub fn qubits_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_nodes];
        for n in &self.nodes {
            counts[n.as_usize()] += 1;
        }
        counts
    }
}

/// Partitions a circuit's qubits over `num_nodes` nodes, minimizing remote
/// gates with the multilevel partitioner (the paper's METIS baseline).
///
/// The partition is exactly balanced when `num_qubits` divides evenly;
/// otherwise parts differ by at most one qubit. `seed` makes the result
/// reproducible.
///
/// # Errors
///
/// Returns [`PartitionError`] when the circuit has no qubits or the node
/// count is invalid.
///
/// # Examples
///
/// ```
/// use dqc_partition::partition_circuit;
/// use dqc_workloads::{tlim, TlimParams};
///
/// # fn main() -> Result<(), dqc_partition::PartitionError> {
/// let c = tlim(32, 10, TlimParams::default());
/// let map = partition_circuit(&c, 2, 7)?;
/// // A chain splits into two contiguous halves: 10 remote gates
/// // (the 10 Trotter repetitions of the single crossing bond).
/// assert_eq!(map.count_remote(&c), 10);
/// assert_eq!(map.qubits_per_node(), vec![16, 16]);
/// # Ok(())
/// # }
/// ```
pub fn partition_circuit(
    circuit: &Circuit,
    num_nodes: usize,
    seed: u64,
) -> Result<QubitMap, PartitionError> {
    let graph = Graph::from_circuit(circuit);
    let tolerance = if (circuit.num_qubits() as usize).is_multiple_of(num_nodes.max(1)) {
        0
    } else {
        1
    };
    // A few restarts with distinct seeds; keep the best cut.
    let mut best: Option<(u64, QubitMap)> = None;
    for attempt in 0..4u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (attempt * 0x9E37_79B9));
        let p = partition_graph(&graph, num_nodes, tolerance, &mut rng)?;
        let map = QubitMap::from_assignment(&p.assignment, num_nodes);
        if best.as_ref().is_none_or(|(c, _)| p.cut < *c) {
            best = Some((p.cut, map));
        }
    }
    Ok(best.expect("at least one attempt").1)
}

/// Topology-aware partitioning: like [`partition_circuit`], but every cut
/// edge is weighted by the network hop distance between the nodes it
/// crosses — a gate between adjacent QPUs costs one Bell pair, while one
/// between nodes `d` hops apart costs a `d`-link swap chain.
///
/// `hop_distance[a][b]` is the network distance between nodes `a` and `b`
/// (e.g. `NetworkTopology::hop_distance_matrix` from `dqc-entanglement`).
/// Candidates from the same multilevel restarts as [`partition_circuit`]
/// are scored by hop-weighted cut, and part labels are additionally
/// permuted so heavily interacting parts land on nearby nodes. With a
/// uniform (all-to-all) distance matrix the result is identical to
/// [`partition_circuit`].
///
/// # Errors
///
/// Returns [`PartitionError`] under the same conditions as
/// [`partition_circuit`].
///
/// # Panics
///
/// Panics when the matrix is not `num_nodes × num_nodes`.
///
/// # Examples
///
/// ```
/// use dqc_partition::{partition_circuit, partition_circuit_weighted};
/// use dqc_workloads::qft;
///
/// # fn main() -> Result<(), dqc_partition::PartitionError> {
/// let c = qft(16);
/// // Uniform distances degenerate to the unweighted partitioner:
/// let uniform = vec![vec![1u64; 2]; 2];
/// assert_eq!(
///     partition_circuit_weighted(&c, 2, 0, &uniform)?,
///     partition_circuit(&c, 2, 0)?
/// );
/// # Ok(())
/// # }
/// ```
pub fn partition_circuit_weighted(
    circuit: &Circuit,
    num_nodes: usize,
    seed: u64,
    hop_distance: &[Vec<u64>],
) -> Result<QubitMap, PartitionError> {
    assert_eq!(hop_distance.len(), num_nodes, "distance matrix rows");
    assert!(
        hop_distance.iter().all(|row| row.len() == num_nodes),
        "distance matrix must be square"
    );
    let graph = Graph::from_circuit(circuit);
    let tolerance = if (circuit.num_qubits() as usize).is_multiple_of(num_nodes.max(1)) {
        0
    } else {
        1
    };
    let mut best: Option<(u64, QubitMap)> = None;
    for attempt in 0..4u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (attempt * 0x9E37_79B9));
        let p = partition_graph(&graph, num_nodes, tolerance, &mut rng)?;
        let map = relabel_for_distance(&graph, &p.assignment, num_nodes, hop_distance);
        let cost = hop_weighted_cut(&graph, &map, hop_distance);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, map));
        }
    }
    Ok(best.expect("at least one attempt").1)
}

/// Hop-weighted cut of a map: `Σ w(u,v) · dist(part(u), part(v))` over
/// cut edges of the interaction graph. Saturating arithmetic, so
/// `u64::MAX` "unreachable" distances (a disconnected network) rank as
/// infinitely bad instead of overflowing.
fn hop_weighted_cut(graph: &Graph, map: &QubitMap, hop_distance: &[Vec<u64>]) -> u64 {
    let mut cost = 0u64;
    for v in 0..graph.num_vertices() as u32 {
        let pv = map.node_of(QubitId::new(v)).as_usize();
        for &(u, w) in graph.neighbors(v) {
            if v < u {
                let pu = map.node_of(QubitId::new(u)).as_usize();
                if pv != pu {
                    cost = cost.saturating_add(w.saturating_mul(hop_distance[pv][pu]));
                }
            }
        }
    }
    cost
}

/// Searches part-label permutations for the hop-cheapest placement of an
/// assignment onto the physical nodes, keeping the identity unless a
/// relabeling is strictly better (so uniform distances change nothing).
/// Exhaustive for up to 6 nodes; greedy pairwise label swaps beyond that.
fn relabel_for_distance(
    graph: &Graph,
    assignment: &[u32],
    num_nodes: usize,
    hop_distance: &[Vec<u64>],
) -> QubitMap {
    // Inter-part interaction weights (symmetric, diagonal unused).
    let mut traffic = vec![vec![0u64; num_nodes]; num_nodes];
    for v in 0..graph.num_vertices() as u32 {
        let pv = assignment[v as usize] as usize;
        for &(u, w) in graph.neighbors(v) {
            if v < u {
                let pu = assignment[u as usize] as usize;
                if pv != pu {
                    traffic[pv][pu] += w;
                    traffic[pu][pv] += w;
                }
            }
        }
    }
    let cost_of = |perm: &[usize]| -> u64 {
        let mut cost = 0u64;
        for a in 0..num_nodes {
            for b in a + 1..num_nodes {
                cost = cost
                    .saturating_add(traffic[a][b].saturating_mul(hop_distance[perm[a]][perm[b]]));
            }
        }
        cost
    };
    let mut best: Vec<usize> = (0..num_nodes).collect();
    let mut best_cost = cost_of(&best);
    if num_nodes <= 6 {
        let mut perm: Vec<usize> = (0..num_nodes).collect();
        permute(&mut perm, 0, &mut |candidate| {
            let cost = cost_of(candidate);
            if cost < best_cost {
                best_cost = cost;
                best = candidate.to_vec();
            }
        });
    } else {
        // Greedy label-pair swaps to a local optimum, deterministic order.
        let mut improved = true;
        while improved {
            improved = false;
            for a in 0..num_nodes {
                for b in a + 1..num_nodes {
                    let mut candidate = best.clone();
                    candidate.swap(a, b);
                    let cost = cost_of(&candidate);
                    if cost < best_cost {
                        best_cost = cost;
                        best = candidate;
                        improved = true;
                    }
                }
            }
        }
    }
    let relabeled: Vec<u32> = assignment
        .iter()
        .map(|&p| best[p as usize] as u32)
        .collect();
    QubitMap::from_assignment(&relabeled, num_nodes)
}

/// Visits every permutation of `items[at..]` in lexicographic-ish swap
/// order, calling `visit` on the full slice.
fn permute(items: &mut [usize], at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_workloads::{qft, tlim, PaperBenchmark, TlimParams};

    #[test]
    fn tlim_32_matches_table_i_remote_count() {
        let c = tlim(32, 10, TlimParams::default());
        let map = partition_circuit(&c, 2, 1).unwrap();
        assert_eq!(map.count_remote(&c), 10, "Table I: 10 remote gates");
        assert_eq!(map.count_local_2q(&c), 300, "Table I: 300 local gates");
    }

    #[test]
    fn qft_32_matches_table_i_remote_count() {
        // QFT's interaction graph is complete with unit weights: *any*
        // 16/16 split cuts 16·16 = 256 edges (Table I: 256 remote).
        let c = qft(32);
        let map = partition_circuit(&c, 2, 1).unwrap();
        assert_eq!(map.count_remote(&c), 256);
        assert_eq!(map.count_local_2q(&c), 240);
    }

    #[test]
    fn qaoa_remote_counts_land_in_paper_band() {
        // Table I: QAOA-r4-32 → 12 remote of 64; QAOA-r8-32 → 34 of 125.
        // Exact values depend on the authors' unpublished graphs; ours
        // must land in the same band and preserve the ordering.
        let r4 = PaperBenchmark::QaoaR4_32.circuit();
        let map4 = partition_circuit(&r4, 2, 1).unwrap();
        let remote4 = map4.count_remote(&r4);
        assert!((6..=24).contains(&remote4), "r4 remote = {remote4}");

        let r8 = PaperBenchmark::QaoaR8_32.circuit();
        let map8 = partition_circuit(&r8, 2, 1).unwrap();
        let remote8 = map8.count_remote(&r8);
        assert!((24..=56).contains(&remote8), "r8 remote = {remote8}");
        assert!(remote8 > remote4, "denser graph cuts more");
    }

    #[test]
    fn balance_is_exact_for_even_splits() {
        for bench in PaperBenchmark::ALL {
            let c = bench.circuit();
            let map = partition_circuit(&c, 2, 3).unwrap();
            let per = map.qubits_per_node();
            assert_eq!(per[0], per[1], "{bench}: {per:?}");
        }
    }

    #[test]
    fn contiguous_blocks() {
        let map = QubitMap::contiguous(10, 3);
        assert_eq!(map.qubits_per_node(), vec![4, 4, 2]);
        assert_eq!(map.node_of(QubitId::new(3)), NodeId::new(0));
        assert_eq!(map.node_of(QubitId::new(4)), NodeId::new(1));
    }

    #[test]
    fn is_remote_classifies_operations() {
        let map = QubitMap::contiguous(4, 2);
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).h(3);
        let ops = c.operations();
        assert!(!map.is_remote(&ops[0]), "0-1 same node");
        assert!(map.is_remote(&ops[1]), "1-2 crosses");
        assert!(!map.is_remote(&ops[2]), "1q never remote");
    }

    #[test]
    fn partitioner_beats_contiguous_on_shuffled_chain() {
        // A chain whose qubit labels are bit-reversed: contiguous blocks
        // cut many bonds, the partitioner should recover ~1.
        let n = 32u32;
        let perm: Vec<u32> = (0..n).map(|i| i.reverse_bits() >> (32 - 5)).collect();
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.rzz(perm[i as usize], perm[(i + 1) as usize], 0.5);
        }
        let smart = partition_circuit(&c, 2, 5).unwrap().count_remote(&c);
        let naive = QubitMap::contiguous(n, 2).count_remote(&c);
        assert!(smart < naive, "smart {smart} vs naive {naive}");
        assert!(smart <= 3, "near-optimal cut, got {smart}");
    }

    #[test]
    fn uniform_distances_degenerate_to_unweighted() {
        // The all-to-all matrix must reproduce partition_circuit exactly —
        // the engine's default-topology bit-for-bit guarantee rests on it.
        for bench in PaperBenchmark::ALL {
            let c = bench.circuit();
            for (nodes, seed) in [(2usize, 0u64), (2, 0xDAC5), (4, 17)] {
                if !(c.num_qubits() as usize).is_multiple_of(nodes) {
                    continue;
                }
                let mut uniform = vec![vec![1u64; nodes]; nodes];
                for (i, row) in uniform.iter_mut().enumerate() {
                    row[i] = 0;
                }
                assert_eq!(
                    partition_circuit_weighted(&c, nodes, seed, &uniform).unwrap(),
                    partition_circuit(&c, nodes, seed).unwrap(),
                    "{bench} nodes={nodes} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn hop_weighting_never_costs_more_on_a_chain() {
        // Four clusters with asymmetric inter-cluster traffic: on a chain
        // network the weighted mode must do at least as well (in
        // hop-weighted cut) as the topology-blind partition.
        let mut c = Circuit::new(16);
        for cluster in 0..4u32 {
            let base = cluster * 4;
            for i in base..base + 4 {
                for j in i + 1..base + 4 {
                    for _ in 0..8 {
                        c.cz(i, j);
                    }
                }
            }
        }
        // Heavy A↔B and C↔D coupling, light B↔C and A↔D.
        for _ in 0..6 {
            c.cx(0, 4).cx(8, 12);
        }
        c.cx(4, 8).cx(0, 12);
        let chain_dist: Vec<Vec<u64>> = (0..4)
            .map(|a: u64| (0..4).map(|b: u64| a.abs_diff(b)).collect())
            .collect();
        let blind = partition_circuit(&c, 4, 3).unwrap();
        let aware = partition_circuit_weighted(&c, 4, 3, &chain_dist).unwrap();
        let g = Graph::from_circuit(&c);
        assert!(
            hop_weighted_cut(&g, &aware, &chain_dist) <= hop_weighted_cut(&g, &blind, &chain_dist),
            "topology-aware placement must not be worse"
        );
        assert_eq!(aware.qubits_per_node(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn unreachable_distances_saturate_instead_of_overflowing() {
        // A disconnected network's matrix carries u64::MAX entries; the
        // weighted partitioner must rank them as infinitely bad, not
        // panic (debug) or wrap (release).
        let c = qft(16);
        let mut dist = vec![vec![1u64; 4]; 4];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        dist[0][3] = u64::MAX;
        dist[3][0] = u64::MAX;
        let map = partition_circuit_weighted(&c, 4, 0, &dist).unwrap();
        assert_eq!(map.qubits_per_node(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn relabeling_places_heavy_traffic_on_adjacent_nodes() {
        // Two 8-cliques, so the bisection is forced; with a 2-node system
        // relabeling is a no-op, but the weighted cut must equal
        // cut × distance.
        let c = qft(8);
        let map = partition_circuit(&c, 2, 1).unwrap();
        let g = Graph::from_circuit(&c);
        let far = vec![vec![0u64, 3], vec![3, 0]];
        let weighted = hop_weighted_cut(&g, &map, &far);
        let near = vec![vec![0u64, 1], vec![1, 0]];
        assert_eq!(weighted, 3 * hop_weighted_cut(&g, &map, &near));
    }

    #[test]
    fn from_assignment_validates() {
        let map = QubitMap::from_assignment(&[0, 1, 0], 2);
        assert_eq!(map.num_qubits(), 3);
        assert_eq!(map.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_assignment_rejects_bad_ids() {
        let _ = QubitMap::from_assignment(&[0, 2], 2);
    }
}
