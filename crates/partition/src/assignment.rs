//! Mapping circuit qubits onto QPU nodes.

use crate::{partition_graph, Graph, PartitionError};
use dqc_circuit::{Circuit, Operation};
use dqc_types::{NodeId, QubitId};
use rand::SeedableRng;

/// An assignment of every circuit qubit to a QPU node.
///
/// The paper's baseline (§IV-A) obtains this map with the METIS solver to
/// minimize the number of remote operations; [`partition_circuit`] plays
/// that role here using the workspace's own multilevel partitioner.
///
/// # Examples
///
/// ```
/// use dqc_partition::QubitMap;
/// use dqc_types::{NodeId, QubitId};
///
/// let map = QubitMap::contiguous(8, 2);
/// assert_eq!(map.node_of(QubitId::new(0)), NodeId::new(0));
/// assert_eq!(map.node_of(QubitId::new(7)), NodeId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitMap {
    nodes: Vec<NodeId>,
    num_nodes: usize,
}

impl QubitMap {
    /// Builds a map from explicit per-qubit part ids.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes` is zero or an id is out of range.
    pub fn from_assignment(assignment: &[u32], num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        let nodes = assignment
            .iter()
            .map(|&p| {
                assert!((p as usize) < num_nodes, "part id {p} out of range");
                NodeId::new(p as u16)
            })
            .collect();
        Self { nodes, num_nodes }
    }

    /// The trivial block mapping: the first `n/k` qubits on node 0, the
    /// next block on node 1, and so on (remainder spread over the first
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes` is zero.
    pub fn contiguous(num_qubits: u32, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        let per = (num_qubits as usize).div_ceil(num_nodes);
        let nodes = (0..num_qubits)
            .map(|q| NodeId::new((q as usize / per) as u16))
            .collect();
        Self { nodes, num_nodes }
    }

    /// Number of qubits mapped.
    pub fn num_qubits(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes in the system.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The node hosting `qubit`.
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn node_of(&self, qubit: QubitId) -> NodeId {
        self.nodes[qubit.as_usize()]
    }

    /// Returns true when the operation spans two nodes (a remote gate).
    pub fn is_remote(&self, op: &Operation) -> bool {
        match op.qubits() {
            [a, b] => self.node_of(*a) != self.node_of(*b),
            _ => false,
        }
    }

    /// Counts the remote two-qubit gates of a circuit under this map —
    /// the paper's Table I "#remote 2Q" column.
    pub fn count_remote(&self, circuit: &Circuit) -> usize {
        circuit
            .operations()
            .iter()
            .filter(|op| self.is_remote(op))
            .count()
    }

    /// Counts the local two-qubit gates — Table I's "#local 2Q" column.
    pub fn count_local_2q(&self, circuit: &Circuit) -> usize {
        circuit
            .operations()
            .iter()
            .filter(|op| op.gate().is_two_qubit() && !self.is_remote(op))
            .count()
    }

    /// Qubits hosted by each node.
    pub fn qubits_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_nodes];
        for n in &self.nodes {
            counts[n.as_usize()] += 1;
        }
        counts
    }
}

/// Partitions a circuit's qubits over `num_nodes` nodes, minimizing remote
/// gates with the multilevel partitioner (the paper's METIS baseline).
///
/// The partition is exactly balanced when `num_qubits` divides evenly;
/// otherwise parts differ by at most one qubit. `seed` makes the result
/// reproducible.
///
/// # Errors
///
/// Returns [`PartitionError`] when the circuit has no qubits or the node
/// count is invalid.
///
/// # Examples
///
/// ```
/// use dqc_partition::partition_circuit;
/// use dqc_workloads::{tlim, TlimParams};
///
/// # fn main() -> Result<(), dqc_partition::PartitionError> {
/// let c = tlim(32, 10, TlimParams::default());
/// let map = partition_circuit(&c, 2, 7)?;
/// // A chain splits into two contiguous halves: 10 remote gates
/// // (the 10 Trotter repetitions of the single crossing bond).
/// assert_eq!(map.count_remote(&c), 10);
/// assert_eq!(map.qubits_per_node(), vec![16, 16]);
/// # Ok(())
/// # }
/// ```
pub fn partition_circuit(
    circuit: &Circuit,
    num_nodes: usize,
    seed: u64,
) -> Result<QubitMap, PartitionError> {
    let graph = Graph::from_circuit(circuit);
    let tolerance = if (circuit.num_qubits() as usize).is_multiple_of(num_nodes.max(1)) {
        0
    } else {
        1
    };
    // A few restarts with distinct seeds; keep the best cut.
    let mut best: Option<(u64, QubitMap)> = None;
    for attempt in 0..4u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (attempt * 0x9E37_79B9));
        let p = partition_graph(&graph, num_nodes, tolerance, &mut rng)?;
        let map = QubitMap::from_assignment(&p.assignment, num_nodes);
        if best.as_ref().is_none_or(|(c, _)| p.cut < *c) {
            best = Some((p.cut, map));
        }
    }
    Ok(best.expect("at least one attempt").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_workloads::{qft, tlim, PaperBenchmark, TlimParams};

    #[test]
    fn tlim_32_matches_table_i_remote_count() {
        let c = tlim(32, 10, TlimParams::default());
        let map = partition_circuit(&c, 2, 1).unwrap();
        assert_eq!(map.count_remote(&c), 10, "Table I: 10 remote gates");
        assert_eq!(map.count_local_2q(&c), 300, "Table I: 300 local gates");
    }

    #[test]
    fn qft_32_matches_table_i_remote_count() {
        // QFT's interaction graph is complete with unit weights: *any*
        // 16/16 split cuts 16·16 = 256 edges (Table I: 256 remote).
        let c = qft(32);
        let map = partition_circuit(&c, 2, 1).unwrap();
        assert_eq!(map.count_remote(&c), 256);
        assert_eq!(map.count_local_2q(&c), 240);
    }

    #[test]
    fn qaoa_remote_counts_land_in_paper_band() {
        // Table I: QAOA-r4-32 → 12 remote of 64; QAOA-r8-32 → 34 of 125.
        // Exact values depend on the authors' unpublished graphs; ours
        // must land in the same band and preserve the ordering.
        let r4 = PaperBenchmark::QaoaR4_32.circuit();
        let map4 = partition_circuit(&r4, 2, 1).unwrap();
        let remote4 = map4.count_remote(&r4);
        assert!((6..=24).contains(&remote4), "r4 remote = {remote4}");

        let r8 = PaperBenchmark::QaoaR8_32.circuit();
        let map8 = partition_circuit(&r8, 2, 1).unwrap();
        let remote8 = map8.count_remote(&r8);
        assert!((24..=56).contains(&remote8), "r8 remote = {remote8}");
        assert!(remote8 > remote4, "denser graph cuts more");
    }

    #[test]
    fn balance_is_exact_for_even_splits() {
        for bench in PaperBenchmark::ALL {
            let c = bench.circuit();
            let map = partition_circuit(&c, 2, 3).unwrap();
            let per = map.qubits_per_node();
            assert_eq!(per[0], per[1], "{bench}: {per:?}");
        }
    }

    #[test]
    fn contiguous_blocks() {
        let map = QubitMap::contiguous(10, 3);
        assert_eq!(map.qubits_per_node(), vec![4, 4, 2]);
        assert_eq!(map.node_of(QubitId::new(3)), NodeId::new(0));
        assert_eq!(map.node_of(QubitId::new(4)), NodeId::new(1));
    }

    #[test]
    fn is_remote_classifies_operations() {
        let map = QubitMap::contiguous(4, 2);
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).h(3);
        let ops = c.operations();
        assert!(!map.is_remote(&ops[0]), "0-1 same node");
        assert!(map.is_remote(&ops[1]), "1-2 crosses");
        assert!(!map.is_remote(&ops[2]), "1q never remote");
    }

    #[test]
    fn partitioner_beats_contiguous_on_shuffled_chain() {
        // A chain whose qubit labels are bit-reversed: contiguous blocks
        // cut many bonds, the partitioner should recover ~1.
        let n = 32u32;
        let perm: Vec<u32> = (0..n).map(|i| i.reverse_bits() >> (32 - 5)).collect();
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.rzz(perm[i as usize], perm[(i + 1) as usize], 0.5);
        }
        let smart = partition_circuit(&c, 2, 5).unwrap().count_remote(&c);
        let naive = QubitMap::contiguous(n, 2).count_remote(&c);
        assert!(smart < naive, "smart {smart} vs naive {naive}");
        assert!(smart <= 3, "near-optimal cut, got {smart}");
    }

    #[test]
    fn from_assignment_validates() {
        let map = QubitMap::from_assignment(&[0, 1, 0], 2);
        assert_eq!(map.num_qubits(), 3);
        assert_eq!(map.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_assignment_rejects_bad_ids() {
        let _ = QubitMap::from_assignment(&[0, 2], 2);
    }
}
