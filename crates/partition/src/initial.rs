//! Initial bisection of the coarsest graph (greedy graph growing).

use crate::{cut_weight, Graph};
use rand::Rng;

/// Produces an initial bisection by greedy graph growing (METIS's GGGP):
/// grow a region from a random seed vertex, repeatedly absorbing the
/// frontier vertex with the strongest connection to the region, until side
/// `false` reaches `target0` total weight as closely as possible.
///
/// Several random seeds are tried; the best resulting cut wins.
///
/// # Panics
///
/// Panics on an empty graph.
///
/// # Examples
///
/// ```
/// use dqc_partition::{grow_bisection, Graph};
/// use rand::SeedableRng;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 9);
/// g.add_edge(2, 3, 9);
/// g.add_edge(1, 2, 1);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let side = grow_bisection(&g, 2, &mut rng, 4);
/// assert_eq!(side.iter().filter(|s| !**s).count(), 2);
/// ```
pub fn grow_bisection<R: Rng + ?Sized>(
    graph: &Graph,
    target0: u64,
    rng: &mut R,
    trials: usize,
) -> Vec<bool> {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot bisect an empty graph");
    let mut best: Option<(u64, u64, Vec<bool>)> = None; // (imbalance, cut, side)
    for _ in 0..trials.max(1) {
        let seed = rng.random_range(0..n as u32);
        let side = grow_from(graph, target0, seed);
        let w0: u64 = (0..n as u32)
            .filter(|&v| !side[v as usize])
            .map(|v| graph.vertex_weight(v))
            .sum();
        let key = (w0.abs_diff(target0), cut_weight(graph, &side));
        if best.as_ref().is_none_or(|(bi, bc, _)| key < (*bi, *bc)) {
            best = Some((key.0, key.1, side));
        }
    }
    best.expect("at least one trial ran").2
}

fn grow_from(graph: &Graph, target0: u64, seed: u32) -> Vec<bool> {
    let n = graph.num_vertices();
    // side false = the grown region.
    let mut in_region = vec![false; n];
    let mut weight = 0u64;
    // Connection strength of each vertex to the region.
    let mut attraction = vec![0u64; n];
    let mut current = Some(seed);
    while let Some(v) = current {
        in_region[v as usize] = true;
        weight += graph.vertex_weight(v);
        if weight >= target0 {
            break;
        }
        for &(u, w) in graph.neighbors(v) {
            if !in_region[u as usize] {
                attraction[u as usize] += w;
            }
        }
        // Next: the frontier vertex with max attraction that fits; if the
        // frontier is empty (disconnected graph), any unvisited vertex.
        current = (0..n as u32)
            .filter(|&u| {
                !in_region[u as usize] && weight + graph.vertex_weight(u) <= target0.max(weight + 1)
            })
            .max_by_key(|&u| (attraction[u as usize], std::cmp::Reverse(u)));
    }
    in_region.iter().map(|r| !r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn grows_to_target_weight() {
        let mut g = Graph::new(8);
        for i in 0..7u32 {
            g.add_edge(i, i + 1, 1);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let side = grow_bisection(&g, 4, &mut rng, 8);
        assert_eq!(side.iter().filter(|s| !**s).count(), 4);
    }

    #[test]
    fn region_is_connected_on_a_path() {
        // Growing on a path yields a contiguous block, hence cut = 1.
        let mut g = Graph::new(10);
        for i in 0..9u32 {
            g.add_edge(i, i + 1, 1);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let side = grow_bisection(&g, 5, &mut rng, 10);
        assert_eq!(cut_weight(&g, &side), 1);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        // vertices 4, 5 isolated
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let side = grow_bisection(&g, 3, &mut rng, 6);
        assert_eq!(side.iter().filter(|s| !**s).count(), 3);
    }

    #[test]
    fn weighted_target_respected() {
        let mut g = Graph::with_vertex_weights(vec![2, 2, 1, 1]);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(1, 2, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let side = grow_bisection(&g, 3, &mut rng, 8);
        let w0: u64 = (0..4u32)
            .filter(|&v| !side[v as usize])
            .map(|v| g.vertex_weight(v))
            .sum();
        assert!(w0.abs_diff(3) <= 1, "w0 = {w0}");
    }
}
