//! Multilevel bisection and recursive k-way partitioning.

use crate::{coarsen_once, fm_refine, grow_bisection, Graph};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Error returned by the partitioning entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The graph has no vertices.
    EmptyGraph,
    /// `parts` must be at least 1 and at most the vertex count.
    InvalidPartCount {
        /// Requested part count.
        parts: usize,
        /// Number of vertices available.
        vertices: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::EmptyGraph => write!(f, "cannot partition an empty graph"),
            PartitionError::InvalidPartCount { parts, vertices } => {
                write!(f, "cannot split {vertices} vertices into {parts} parts")
            }
        }
    }
}

impl Error for PartitionError {}

/// Result of a k-way partitioning: one part id per vertex plus the cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[v]` is the part id of vertex `v` (in `0..parts`).
    pub assignment: Vec<u32>,
    /// Total weight of edges whose endpoints lie in different parts.
    pub cut: u64,
    /// Number of parts.
    pub parts: usize,
}

impl Partition {
    /// The total vertex weight of each part.
    pub fn part_weights(&self, graph: &Graph) -> Vec<u64> {
        let mut weights = vec![0u64; self.parts];
        for v in 0..graph.num_vertices() as u32 {
            weights[self.assignment[v as usize] as usize] += graph.vertex_weight(v);
        }
        weights
    }
}

/// Multilevel two-way partition (METIS-style): heavy-edge-matching
/// coarsening to ≤ 24 vertices, greedy-growing initial bisection, then
/// FM refinement at every level on the way back up.
///
/// `target0` is the desired total vertex weight of side `false`;
/// `tolerance` the allowed deviation (0 demands exact balance, achievable
/// whenever vertex weights permit).
///
/// # Errors
///
/// Returns [`PartitionError::EmptyGraph`] for an empty graph.
pub fn bisect<R: Rng + ?Sized>(
    graph: &Graph,
    target0: u64,
    tolerance: u64,
    rng: &mut R,
) -> Result<Vec<bool>, PartitionError> {
    if graph.num_vertices() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    Ok(bisect_recursive(graph, target0, tolerance, rng, 0))
}

const COARSEST_SIZE: usize = 24;
const MAX_LEVELS: usize = 24;
const FM_PASSES: usize = 8;

fn bisect_recursive<R: Rng + ?Sized>(
    graph: &Graph,
    target0: u64,
    tolerance: u64,
    rng: &mut R,
    depth: usize,
) -> Vec<bool> {
    let n = graph.num_vertices();
    if n <= COARSEST_SIZE || depth >= MAX_LEVELS {
        let mut side = grow_bisection(graph, target0, rng, 4 + n.min(8));
        fm_refine(graph, &mut side, target0, tolerance, FM_PASSES);
        return side;
    }
    // Cap merged weight so a balanced bisection stays representable.
    let max_w = (graph.total_vertex_weight() / 6).max(2);
    let level = coarsen_once(graph, max_w, rng);
    if level.coarse.num_vertices() >= n {
        // Coarsening stalled (e.g. all-heavy vertices): solve directly.
        let mut side = grow_bisection(graph, target0, rng, 8);
        fm_refine(graph, &mut side, target0, tolerance, FM_PASSES);
        return side;
    }
    // Solve coarse problem with slack one max-vertex, then refine tight.
    let coarse_side =
        bisect_recursive(&level.coarse, target0, tolerance.max(max_w), rng, depth + 1);
    let mut side: Vec<bool> = (0..n).map(|v| coarse_side[level.map[v] as usize]).collect();
    fm_refine(graph, &mut side, target0, tolerance, FM_PASSES);
    side
}

/// Recursive-bisection k-way partitioning with near-equal part weights
/// (each part within ±`tolerance` of its proportional share at every
/// bisection step).
///
/// # Errors
///
/// Returns [`PartitionError`] for an empty graph or an invalid part count.
///
/// # Examples
///
/// ```
/// use dqc_partition::{partition_graph, Graph};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), dqc_partition::PartitionError> {
/// let mut g = Graph::new(8);
/// for i in 0..7 {
///     g.add_edge(i, i + 1, 1);
/// }
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let p = partition_graph(&g, 2, 0, &mut rng)?;
/// assert_eq!(p.cut, 1, "a path splits with one cut edge");
/// assert_eq!(p.part_weights(&g), vec![4, 4]);
/// # Ok(())
/// # }
/// ```
pub fn partition_graph<R: Rng + ?Sized>(
    graph: &Graph,
    parts: usize,
    tolerance: u64,
    rng: &mut R,
) -> Result<Partition, PartitionError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if parts == 0 || parts > n {
        return Err(PartitionError::InvalidPartCount { parts, vertices: n });
    }
    let mut assignment = vec![0u32; n];
    let vertices: Vec<u32> = (0..n as u32).collect();
    split(graph, &vertices, parts, 0, tolerance, rng, &mut assignment);
    let cut = {
        let mut c = 0;
        for v in 0..n as u32 {
            for &(u, w) in graph.neighbors(v) {
                if v < u && assignment[v as usize] != assignment[u as usize] {
                    c += w;
                }
            }
        }
        c
    };
    Ok(Partition {
        assignment,
        cut,
        parts,
    })
}

#[allow(clippy::too_many_arguments)]
fn split<R: Rng + ?Sized>(
    graph: &Graph,
    vertices: &[u32],
    parts: usize,
    first_part: u32,
    tolerance: u64,
    rng: &mut R,
    assignment: &mut [u32],
) {
    if parts == 1 {
        for &v in vertices {
            assignment[v as usize] = first_part;
        }
        return;
    }
    // Induced subgraph on `vertices`.
    let mut index = vec![u32::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        index[v as usize] = i as u32;
    }
    let mut sub =
        Graph::with_vertex_weights(vertices.iter().map(|&v| graph.vertex_weight(v)).collect());
    for &v in vertices {
        for &(u, w) in graph.neighbors(v) {
            if v < u && index[u as usize] != u32::MAX {
                sub.add_edge(index[v as usize], index[u as usize], w);
            }
        }
    }
    let k0 = parts / 2;
    let k1 = parts - k0;
    let target0 = sub.total_vertex_weight() * k0 as u64 / parts as u64;
    let side = bisect(&sub, target0, tolerance, rng).expect("non-empty by construction");
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            right.push(v);
        } else {
            left.push(v);
        }
    }
    split(graph, &left, k0, first_part, tolerance, rng, assignment);
    split(
        graph,
        &right,
        k1,
        first_part + k0 as u32,
        tolerance,
        rng,
        assignment,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n as u32 {
            g.add_edge(i, (i + 1) % n as u32, 1);
        }
        g
    }

    #[test]
    fn ring_bisection_is_two_cuts() {
        let g = ring(32);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = partition_graph(&g, 2, 0, &mut rng).unwrap();
        assert_eq!(p.cut, 2, "a ring cannot split with fewer than 2 cut edges");
        assert_eq!(p.part_weights(&g), vec![16, 16]);
    }

    #[test]
    fn clustered_graph_finds_clusters() {
        // Four 8-cliques chained by single light edges.
        let mut g = Graph::new(32);
        for c in 0..4u32 {
            let base = c * 8;
            for i in base..base + 8 {
                for j in i + 1..base + 8 {
                    g.add_edge(i, j, 10);
                }
            }
        }
        for c in 0..3u32 {
            g.add_edge(c * 8 + 7, (c + 1) * 8, 1);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p2 = partition_graph(&g, 2, 0, &mut rng).unwrap();
        assert_eq!(p2.cut, 1, "2-way should cut one bridge");
        let p4 = partition_graph(&g, 4, 0, &mut rng).unwrap();
        assert_eq!(p4.cut, 3, "4-way should cut all three bridges");
        assert_eq!(p4.part_weights(&g), vec![8, 8, 8, 8]);
    }

    #[test]
    fn exact_balance_enforced_on_even_graphs() {
        let g = ring(64);
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p = partition_graph(&g, 2, 0, &mut rng).unwrap();
            assert_eq!(p.part_weights(&g), vec![32, 32], "seed {seed}");
        }
    }

    #[test]
    fn partition_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            partition_graph(&Graph::new(0), 2, 0, &mut rng).unwrap_err(),
            PartitionError::EmptyGraph
        );
        assert!(matches!(
            partition_graph(&ring(4), 0, 0, &mut rng).unwrap_err(),
            PartitionError::InvalidPartCount { .. }
        ));
        assert!(matches!(
            partition_graph(&ring(4), 5, 0, &mut rng).unwrap_err(),
            PartitionError::InvalidPartCount { .. }
        ));
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let g = ring(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = partition_graph(&g, 1, 0, &mut rng).unwrap();
        assert!(p.assignment.iter().all(|&a| a == 0));
        assert_eq!(p.cut, 0);
    }

    #[test]
    fn three_way_split_of_path() {
        let mut g = Graph::new(9);
        for i in 0..8u32 {
            g.add_edge(i, i + 1, 1);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = partition_graph(&g, 3, 0, &mut rng).unwrap();
        assert_eq!(p.cut, 2, "path into 3 blocks cuts 2 edges");
        assert_eq!(p.part_weights(&g), vec![3, 3, 3]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = ring(40);
        let a = partition_graph(&g, 2, 0, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = partition_graph(&g, 2, 0, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
