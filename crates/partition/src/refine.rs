//! Fiduccia–Mattheyses refinement of a two-way partition.

use crate::Graph;

/// Weighted cut of a two-way partition.
///
/// # Examples
///
/// ```
/// use dqc_partition::{cut_weight, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 4);
/// g.add_edge(1, 2, 1);
/// assert_eq!(cut_weight(&g, &[false, false, true]), 1);
/// assert_eq!(cut_weight(&g, &[false, true, true]), 4);
/// ```
pub fn cut_weight(graph: &Graph, side: &[bool]) -> u64 {
    let mut cut = 0;
    for v in 0..graph.num_vertices() as u32 {
        for &(u, w) in graph.neighbors(v) {
            if v < u && side[v as usize] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Weight of side `false` of a partition.
fn side0_weight(graph: &Graph, side: &[bool]) -> u64 {
    (0..graph.num_vertices() as u32)
        .filter(|&v| !side[v as usize])
        .map(|v| graph.vertex_weight(v))
        .sum()
}

/// Refines a bisection in place with Fiduccia–Mattheyses passes, returning
/// the final cut weight.
///
/// Side `false` is driven towards `target0` total vertex weight, with
/// `tolerance` slack. Each pass tentatively moves every vertex once in
/// best-gain order (repairing imbalance first when out of tolerance) and
/// rolls back to the best *balanced* prefix; passes repeat until no
/// improvement.
///
/// # Panics
///
/// Panics when `side.len()` differs from the vertex count.
///
/// # Examples
///
/// ```
/// use dqc_partition::{cut_weight, fm_refine, Graph};
///
/// // Two triangles joined by one light edge; start from a bad split.
/// let mut g = Graph::new(6);
/// for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
///     g.add_edge(a, b, 10);
/// }
/// g.add_edge(2, 3, 1);
/// let mut side = vec![false, true, false, true, false, true];
/// let cut = fm_refine(&g, &mut side, 3, 0, 8);
/// assert_eq!(cut, 1, "FM should recover the natural split");
/// ```
pub fn fm_refine(
    graph: &Graph,
    side: &mut [bool],
    target0: u64,
    tolerance: u64,
    max_passes: usize,
) -> u64 {
    let n = graph.num_vertices();
    assert_eq!(side.len(), n, "side vector size mismatch");
    if n == 0 {
        return 0;
    }
    let mut cut = cut_weight(graph, side);

    for _ in 0..max_passes {
        let improved = fm_pass(graph, side, target0, tolerance, &mut cut);
        if !improved {
            break;
        }
    }
    cut
}

/// Distance of side-0 weight from its target.
fn imbalance(w0: u64, target0: u64) -> u64 {
    w0.abs_diff(target0)
}

fn fm_pass(graph: &Graph, side: &mut [bool], target0: u64, tolerance: u64, cut: &mut u64) -> bool {
    let n = graph.num_vertices();
    // gain[v] = cut reduction if v switches sides.
    let mut gain = vec![0i64; n];
    for v in 0..n as u32 {
        for &(u, w) in graph.neighbors(v) {
            if side[v as usize] != side[u as usize] {
                gain[v as usize] += w as i64;
            } else {
                gain[v as usize] -= w as i64;
            }
        }
    }

    let mut locked = vec![false; n];
    let mut w0 = side0_weight(graph, side);
    let start_cut = *cut;
    let mut running_cut = *cut;
    let mut best_cut = if imbalance(w0, target0) <= tolerance {
        *cut
    } else {
        u64::MAX
    };
    let mut best_prefix = 0usize;
    let mut moves: Vec<u32> = Vec::with_capacity(n);
    // Mid-pass, imbalance may temporarily exceed the tolerance by one
    // vertex (the hallmark of FM); only balanced prefixes are recorded.
    let max_vw = (0..n as u32)
        .map(|v| graph.vertex_weight(v))
        .max()
        .unwrap_or(1);
    let pass_tolerance = tolerance + max_vw;

    for _ in 0..n {
        // Candidate = unlocked vertex whose move keeps (or restores)
        // balance feasibility; among those, maximize gain.
        let out_of_balance = imbalance(w0, target0) > tolerance;
        let mut best: Option<(i64, std::cmp::Reverse<u32>, u32)> = None;
        for v in 0..n as u32 {
            if locked[v as usize] {
                continue;
            }
            let vw = graph.vertex_weight(v);
            let new_w0 = if side[v as usize] { w0 + vw } else { w0 - vw };
            let feasible = if out_of_balance {
                imbalance(new_w0, target0) < imbalance(w0, target0)
            } else {
                imbalance(new_w0, target0) <= pass_tolerance
            };
            if !feasible {
                continue;
            }
            let key = (gain[v as usize], std::cmp::Reverse(v), v);
            if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                best = Some(key);
            }
        }
        let Some((g, _, v)) = best else { break };

        // Apply the move.
        let vw = graph.vertex_weight(v);
        w0 = if side[v as usize] { w0 + vw } else { w0 - vw };
        side[v as usize] = !side[v as usize];
        locked[v as usize] = true;
        running_cut = (running_cut as i64 - g) as u64;
        moves.push(v);
        // Update neighbour gains.
        for &(u, w) in graph.neighbors(v) {
            if locked[u as usize] {
                continue;
            }
            if side[u as usize] == side[v as usize] {
                // u was across, now together: moving u away gains more.
                gain[u as usize] -= 2 * w as i64;
            } else {
                gain[u as usize] += 2 * w as i64;
            }
        }
        if imbalance(w0, target0) <= tolerance && running_cut < best_cut {
            best_cut = running_cut;
            best_prefix = moves.len();
        }
    }

    // Roll back to the best balanced prefix.
    for &v in moves[best_prefix..].iter().rev() {
        side[v as usize] = !side[v as usize];
    }
    if best_cut == u64::MAX {
        // Never reached balance; keep whatever the prefix produced.
        *cut = cut_weight(graph, side);
        return false;
    }
    *cut = best_cut;
    best_cut < start_cut
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(bridge_weight: u64) -> Graph {
        let mut g = Graph::new(8);
        for part in [0u32, 4] {
            for i in part..part + 4 {
                for j in i + 1..part + 4 {
                    g.add_edge(i, j, 10);
                }
            }
        }
        g.add_edge(3, 4, bridge_weight);
        g
    }

    #[test]
    fn recovers_natural_bisection_from_random_start() {
        let g = two_cliques(1);
        let mut side = vec![false, true, false, true, true, false, true, false];
        let cut = fm_refine(&g, &mut side, 4, 0, 10);
        assert_eq!(cut, 1);
        assert_eq!(side[0], side[1]);
        assert_eq!(side[4], side[5]);
        assert_ne!(side[0], side[4]);
    }

    #[test]
    fn repairs_imbalance_before_optimizing() {
        let g = two_cliques(1);
        // All on one side: grossly imbalanced.
        let mut side = vec![false; 8];
        let cut = fm_refine(&g, &mut side, 4, 0, 10);
        let w0 = side.iter().filter(|s| !**s).count();
        assert_eq!(w0, 4, "exact balance restored");
        assert_eq!(cut, 1);
    }

    #[test]
    fn respects_tolerance_zero_with_odd_weights() {
        // 3 vertices, target 1, tolerance 1: any single vertex alone is ok.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        let mut side = vec![false, false, true];
        let cut = fm_refine(&g, &mut side, 1, 1, 4);
        assert!(cut <= 2);
        let w0 = side.iter().filter(|s| !**s).count() as u64;
        assert!(imbalance(w0, 1) <= 1);
    }

    #[test]
    fn cut_weight_empty_graph_is_zero() {
        let g = Graph::new(4);
        assert_eq!(cut_weight(&g, &[false, true, false, true]), 0);
        let mut side = vec![false, true, false, true];
        assert_eq!(fm_refine(&g, &mut side, 2, 0, 3), 0);
    }

    #[test]
    fn never_worsens_a_balanced_start() {
        let g = two_cliques(5);
        let mut side = vec![false, false, false, false, true, true, true, true];
        let before = cut_weight(&g, &side);
        let after = fm_refine(&g, &mut side, 4, 0, 10);
        assert!(after <= before);
        assert_eq!(after, 5, "optimal cut is the bridge");
    }

    #[test]
    fn weighted_vertices_respected() {
        // Vertex 0 weighs 3; a 3-vs-3 split must put it alone.
        let mut g = Graph::with_vertex_weights(vec![3, 1, 1, 1]);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 5);
        g.add_edge(2, 3, 5);
        let mut side = vec![false, true, false, true];
        let cut = fm_refine(&g, &mut side, 3, 0, 10);
        let w0: u64 = (0..4u32)
            .filter(|&v| !side[v as usize])
            .map(|v| g.vertex_weight(v))
            .sum();
        assert_eq!(w0, 3);
        assert_eq!(cut, 1, "best 3/3 split cuts only the light edge");
    }
}
