//! Heavy-edge-matching coarsening (the "multilevel" in multilevel
//! partitioning).

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// One level of coarsening: the coarse graph plus the fine→coarse vertex
/// map.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The contracted graph.
    pub coarse: Graph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<u32>,
}

/// Contracts a maximal heavy-edge matching: vertices are visited in random
/// order and greedily matched to the unmatched neighbour with the heaviest
/// connecting edge (METIS's HEM rule). Matched pairs merge into one coarse
/// vertex whose weight is the pair's sum; parallel edges accumulate.
///
/// Vertices heavier than `max_vertex_weight` are left unmatched so that the
/// coarsest graph still admits a balanced bisection.
///
/// # Examples
///
/// ```
/// use dqc_partition::{coarsen_once, Graph};
/// use rand::SeedableRng;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 10);
/// g.add_edge(2, 3, 10);
/// g.add_edge(1, 2, 1);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let level = coarsen_once(&g, u64::MAX, &mut rng);
/// assert_eq!(level.coarse.num_vertices(), 2); // both heavy edges contract
/// ```
pub fn coarsen_once<R: Rng + ?Sized>(
    graph: &Graph,
    max_vertex_weight: u64,
    rng: &mut R,
) -> Coarsening {
    let n = graph.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbour whose merged weight stays in bounds.
        let best = graph
            .neighbors(v)
            .iter()
            .filter(|(u, _)| {
                mate[*u as usize] == UNMATCHED
                    && graph.vertex_weight(v) + graph.vertex_weight(*u) <= max_vertex_weight
            })
            .max_by_key(|(u, w)| (*w, std::cmp::Reverse(*u)));
        match best {
            Some(&(u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // stays a singleton
        }
    }

    // Assign coarse ids: each pair (or singleton) gets one id, smaller
    // endpoint first for determinism.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }

    let mut weights = vec![0u64; next as usize];
    for v in 0..n as u32 {
        weights[map[v as usize] as usize] += graph.vertex_weight(v);
    }
    let mut coarse = Graph::with_vertex_weights(weights);
    for v in 0..n as u32 {
        for &(u, w) in graph.neighbors(v) {
            if v < u {
                let (cv, cu) = (map[v as usize], map[u as usize]);
                if cv != cu {
                    coarse.add_edge(cv, cu, w);
                }
            }
        }
    }
    Coarsening { coarse, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n as u32 - 1 {
            g.add_edge(i, i + 1, 1);
        }
        g
    }

    #[test]
    fn coarsening_halves_or_better() {
        let g = path(16);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let level = coarsen_once(&g, u64::MAX, &mut rng);
        let nc = level.coarse.num_vertices();
        assert!((8..16).contains(&nc), "coarse size {nc}");
    }

    #[test]
    fn vertex_weight_is_conserved() {
        let g = path(10);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let level = coarsen_once(&g, u64::MAX, &mut rng);
        assert_eq!(level.coarse.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn edge_weight_outside_matching_is_conserved() {
        // Total edge weight = matched (disappears) + cross (conserved).
        let g = path(8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let level = coarsen_once(&g, u64::MAX, &mut rng);
        let contracted = g.num_vertices() - level.coarse.num_vertices();
        assert_eq!(
            level.coarse.total_edge_weight(),
            g.total_edge_weight() - contracted as u64
        );
    }

    #[test]
    fn heavy_edges_contract_first() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 100);
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let level = coarsen_once(&g, u64::MAX, &mut rng);
            assert_eq!(level.coarse.num_vertices(), 2);
            assert_eq!(level.map[0], level.map[1], "heavy pair (0,1) merged");
            assert_eq!(level.map[2], level.map[3], "heavy pair (2,3) merged");
        }
    }

    #[test]
    fn weight_cap_prevents_monster_vertices() {
        let mut g = Graph::with_vertex_weights(vec![3, 3, 1, 1]);
        g.add_edge(0, 1, 50);
        g.add_edge(2, 3, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let level = coarsen_once(&g, 4, &mut rng);
        // 0 and 1 (weight 6 > 4) must not merge.
        assert_ne!(level.map[0], level.map[1]);
        for v in 0..level.coarse.num_vertices() as u32 {
            assert!(level.coarse.vertex_weight(v) <= 4);
        }
    }

    #[test]
    fn map_is_total_and_dense() {
        let g = path(9);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let level = coarsen_once(&g, u64::MAX, &mut rng);
        let nc = level.coarse.num_vertices() as u32;
        assert!(level.map.iter().all(|&c| c < nc));
        let mut used = vec![false; nc as usize];
        for &c in &level.map {
            used[c as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "every coarse id is used");
    }
}
