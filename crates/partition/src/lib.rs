//! METIS-style multilevel graph partitioner for distributing circuit
//! qubits across QPU nodes.
//!
//! The paper's baseline (§IV-A) uses the METIS solver \[52\] to assign qubits
//! to nodes while minimizing the number of remote operations. METIS is not
//! redistributable inside this workspace, so this crate re-implements the
//! same algorithm family from scratch:
//!
//! 1. **Coarsening** — [`coarsen_once`]: heavy-edge matching contracts the
//!    graph level by level.
//! 2. **Initial partitioning** — [`grow_bisection`]: greedy graph growing
//!    on the coarsest graph.
//! 3. **Uncoarsening + refinement** — [`fm_refine`]: Fiduccia–Mattheyses
//!    passes with exact balance at the finest level.
//!
//! [`partition_graph`] runs the full pipeline (recursive bisection for
//! k > 2), and [`partition_circuit`] applies it to a circuit's interaction
//! graph, yielding the [`QubitMap`] consumed by `dqc-core`.
//! [`partition_circuit_weighted`] is the topology-aware variant: cut edges
//! are weighted by network hop distance, so heavily interacting qubit
//! groups land on adjacent QPU nodes.
//!
//! # Examples
//!
//! ```
//! use dqc_partition::partition_circuit;
//! use dqc_workloads::qft;
//!
//! # fn main() -> Result<(), dqc_partition::PartitionError> {
//! let c = qft(16);
//! let map = partition_circuit(&c, 2, 0)?;
//! assert_eq!(map.qubits_per_node(), vec![8, 8]);
//! // QFT interacts all-to-all: any balanced split cuts 8·8 pairs.
//! assert_eq!(map.count_remote(&c), 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod coarsen;
mod graph;
mod initial;
mod kway;
mod refine;

pub use assignment::{partition_circuit, partition_circuit_weighted, QubitMap};
pub use coarsen::{coarsen_once, Coarsening};
pub use graph::Graph;
pub use initial::grow_bisection;
pub use kway::{bisect, partition_graph, Partition, PartitionError};
pub use refine::{cut_weight, fm_refine};
