//! Weighted undirected graphs for partitioning.

use dqc_circuit::Circuit;

/// An undirected graph with weighted edges and weighted vertices, in
/// adjacency-list form.
///
/// This is the input format of the multilevel partitioner. Qubit
/// interaction graphs are built with [`Graph::from_circuit`]: one vertex
/// per qubit, one edge per interacting pair, weighted by the number of
/// two-qubit gates between them (cutting it costs that many remote gates).
///
/// # Examples
///
/// ```
/// use dqc_circuit::Circuit;
/// use dqc_partition::Graph;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).cx(0, 1).cz(1, 2);
/// let g = Graph::from_circuit(&c);
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.edge_weight(0, 1), Some(2));
/// assert_eq!(g.total_edge_weight(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<(u32, u64)>>,
    vertex_weights: Vec<u64>,
}

impl Graph {
    /// Creates an edgeless graph on `n` unit-weight vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            vertex_weights: vec![1; n],
        }
    }

    /// Creates an edgeless graph with explicit vertex weights.
    pub fn with_vertex_weights(weights: Vec<u64>) -> Self {
        Self {
            adj: vec![Vec::new(); weights.len()],
            vertex_weights: weights,
        }
    }

    /// Builds the qubit-interaction graph of a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut g = Self::new(circuit.num_qubits() as usize);
        for (a, b, w) in circuit.interactions() {
            g.add_edge(a.index(), b.index(), w);
        }
        g
    }

    /// Adds `weight` to the edge `(a, b)`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or an out-of-range endpoint.
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) {
        assert_ne!(a, b, "self-loops are not allowed");
        let n = self.adj.len() as u32;
        assert!(
            a < n && b < n,
            "edge ({a}, {b}) out of range for {n} vertices"
        );
        for (dir_a, dir_b) in [(a, b), (b, a)] {
            let list = &mut self.adj[dir_a as usize];
            match list.iter_mut().find(|(v, _)| *v == dir_b) {
                Some((_, w)) => *w += weight,
                None => list.push((dir_b, weight)),
            }
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> &[(u32, u64)] {
        &self.adj[v as usize]
    }

    /// The weight of edge `(a, b)`, if present.
    pub fn edge_weight(&self, a: u32, b: u32) -> Option<u64> {
        self.adj[a as usize]
            .iter()
            .find(|(v, _)| *v == b)
            .map(|(_, w)| *w)
    }

    /// The weight of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vertex_weights[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.adj
            .iter()
            .flat_map(|l| l.iter().map(|(_, w)| *w))
            .sum::<u64>()
            / 2
    }

    /// Weighted degree of `v` (sum of incident edge weights).
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.adj[v as usize].iter().map(|(_, w)| *w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_accumulates_weight() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn from_circuit_counts_interactions() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 0).rzz(2, 3, 0.5);
        let g = Graph::from_circuit(&c);
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.edge_weight(2, 3), Some(1));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weighted_degree_sums_incident() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 2, 7);
        assert_eq!(g.weighted_degree(0), 9);
        assert_eq!(g.weighted_degree(1), 2);
        assert_eq!(g.total_edge_weight(), 9);
    }

    #[test]
    fn vertex_weights_default_to_one() {
        let g = Graph::new(5);
        assert_eq!(g.total_vertex_weight(), 5);
        let g = Graph::with_vertex_weights(vec![2, 3]);
        assert_eq!(g.total_vertex_weight(), 5);
        assert_eq!(g.vertex_weight(1), 3);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        Graph::new(2).add_edge(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::new(2).add_edge(0, 5, 1);
    }
}
