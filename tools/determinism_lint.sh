#!/usr/bin/env sh
# Determinism source lint: the simulation engine must stay bit-for-bit
# reproducible, so wall-clock reads (`Instant::now`, `SystemTime::now`)
# and iteration-order-unstable `HashMap`s are denied everywhere except an
# explicit allowlist of timing harnesses and serving-layer bookkeeping
# whose iteration order is proven not to reach any result.
#
# Run from the repository root:  sh tools/determinism_lint.sh
# Exits non-zero, listing every offending file, when a denied pattern
# appears outside the allowlist. To allow a new site, justify it in the
# PR and add it to the matching list below.

set -eu
cd "$(dirname "$0")/.."

# Wall-clock reads: perf harnesses (they measure wall time on purpose)
# and the two serving layers (queue timing, autoscale ticks, quota
# buckets — all kept off the evaluation path). The observability layer
# confines its clock to crates/obs/src/wall.rs: every span timestamp
# flows through the dqc_obs::Clock trait and that module is the one
# place the trait meets a real clock, so allowlisting it keeps the
# rest of the tracing layer lint-clean by construction.
CLOCK_ALLOW="
crates/serve/src/server.rs
crates/served/src/daemon.rs
crates/obs/src/wall.rs
crates/bench/src/bin/perf.rs
crates/bench/src/bin/serve_bench.rs
"

# HashMap: serving/daemon bookkeeping keyed for lookup only, the
# executor's qubit scratch table (drained in deterministic gate order),
# and tests that collate replies by tag before order-insensitive asserts.
HASHMAP_ALLOW="
crates/serve/src/server.rs
crates/served/src/daemon.rs
crates/served/src/quota.rs
crates/core/src/executor.rs
tests/serve_determinism.rs
tests/served_wire.rs
"

fail=0

scan() {
    pattern="$1"
    allow="$2"
    label="$3"
    for file in $(grep -rl --include='*.rs' "$pattern" crates src tests examples 2>/dev/null); do
        case "$allow" in
            *"$file"*) ;;
            *)
                echo "determinism lint: $file uses $label outside the allowlist" >&2
                fail=1
                ;;
        esac
    done
}

scan 'Instant::now\|SystemTime::now' "$CLOCK_ALLOW" "a wall clock"
scan 'HashMap' "$HASHMAP_ALLOW" "HashMap"

if [ "$fail" -ne 0 ]; then
    echo "determinism lint: denied patterns found (see tools/determinism_lint.sh)" >&2
    exit 1
fi
echo "determinism lint: clean"
