//! Beyond the paper: what the network topology costs.
//!
//! ```sh
//! cargo run --release --example topology
//! ```
//!
//! The paper's evaluation implicitly assumes every node pair shares a
//! direct EPR link. Real devices don't: a remote gate between
//! non-adjacent QPUs must splice a chain of links with entanglement
//! swaps, paying fidelity (Werner parameters multiply per hop) and
//! latency (one Bell-measurement round per swap). This example runs two
//! workloads on a 4-node system under a linear chain versus the complete
//! graph and prints the gap.

use dqc::workloads::{ising_2d, PaperBenchmark, TlimParams};
use dqc::{Design, Experiment, NetworkTopology, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = [
        (
            "QAOA-r8-32 (remote-heavy)",
            PaperBenchmark::QaoaR8_32.circuit(),
        ),
        (
            "Ising-8x4 (nearest-neighbor)",
            ising_2d(8, 4, 5, TlimParams::default()),
        ),
    ];
    let mut base = SystemConfig::paper_two_node_32();
    base.data_qubits_per_node = 8; // 4 nodes x 8 = 32 data qubits

    for (name, circuit) in &workloads {
        println!("== {name}");
        let mut gap = Vec::new();
        for (label, topology) in [
            ("chain", NetworkTopology::chain(4)),
            ("all_to_all", NetworkTopology::all_to_all(4)),
        ] {
            let config = base.with_topology(topology);
            let avg = Experiment::new(circuit, &config)?
                .design(Design::AsyncBuf)
                .runs(10)
                .base_seed(7)
                .run()?;
            println!(
                "  {label:<10} depth {:>8.1} CNOT-units ({:>5.2}x ideal)   fidelity {:.4}",
                avg.mean_depth, avg.mean_depth_relative, avg.mean_fidelity
            );
            gap.push((avg.mean_depth, avg.mean_fidelity));
        }
        let (chain, full) = (gap[0], gap[1]);
        println!(
            "  gap: chain pays {:.2}x the makespan and {:.2}x the infidelity\n",
            chain.0 / full.0,
            (1.0 - chain.1) / (1.0 - full.1).max(f64::EPSILON),
        );
    }

    println!(
        "Remote-heavy circuits suffer on sparse networks (multi-hop swap \
         chains),\nwhile nearest-neighbor workloads can even come out ahead: \
         the topology-aware\npartitioner places their traffic on adjacent \
         nodes, and a chain's fewer links\neach get more communication qubits \
         — the co-design trade-off in one picture."
    );
    Ok(())
}
