//! The serving layer: stream a mixed workload through a sharded,
//! compile-once evaluation service.
//!
//! ```sh
//! cargo run --release --example serve
//! ```
//!
//! Spawns a [`dqc::Server`] with two hardware points (the paper's
//! two-node 32- and 64-qubit machines), submits a mixed QAOA/QFT/GHZ
//! request stream against both, and prints the per-request results as
//! they complete, followed by the server's stats snapshot — cache
//! amortization, batching, queue depths, and latency quantiles. Finally
//! it overfills a deliberately tiny queue to show the typed
//! `Overloaded` backpressure signal.

use dqc::workloads::{ghz_chain, qft, PaperBenchmark};
use dqc::{Design, EvalRequest, ServeBuilder, ServeError, SystemConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (server, responses) = ServeBuilder::new()
        .hardware_point("paper-32", SystemConfig::paper_two_node_32())
        .hardware_point("paper-64", SystemConfig::paper_two_node_64())
        .workers_per_shard(2)
        .queue_capacity(64)
        .cache_capacity(16)
        .batch_max(8)
        .spawn()?;

    // A mixed request stream: three circuits, both hardware points,
    // several seeds each. The circuits travel behind `Arc`s — submitting
    // one a thousand times would copy nothing.
    let workload = [
        ("QAOA-r4-32", Arc::new(PaperBenchmark::QaoaR4_32.circuit())),
        ("QFT-32", Arc::new(qft(32))),
        ("GHZ-32", Arc::new(ghz_chain(32))),
    ];
    let mut submitted = 0;
    for (label, circuit) in &workload {
        for point in ["paper-32", "paper-64"] {
            for seed in 0..3 {
                server.submit(
                    EvalRequest::new(*label, Arc::clone(circuit), point, Design::AdaptBuf)
                        .runs(5)
                        .base_seed(seed * 1000),
                )?;
                submitted += 1;
            }
        }
    }

    println!("submitted {submitted} requests; responses in completion order:\n");
    for _ in 0..submitted {
        let response = responses.recv()?;
        let output = response.outcome?;
        let avg = output.averaged();
        println!(
            "  {:<4} {:<10} on {:<8} {} depth {:>7.1} ({:>5.2}x ideal)  fidelity {:.4}  [{:.2} ms]",
            response.id.to_string(),
            response.circuit_label,
            response.point,
            if response.cache_hit { "warm" } else { "cold" },
            avg.mean_depth,
            avg.mean_depth_relative,
            avg.mean_fidelity,
            response.latency.as_secs_f64() * 1e3,
        );
    }

    let stats = server.stats();
    println!(
        "\nserved {} requests at {:.0} req/s: {} cache hits / {} misses, \
         {} dispatches (mean batch {:.1})",
        stats.served,
        stats.throughput_rps,
        stats.cache_hits,
        stats.cache_misses,
        stats.dispatches,
        stats.served as f64 / stats.dispatches.max(1) as f64,
    );
    println!(
        "latency p50 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        stats.latency.p50_ms, stats.latency.p99_ms, stats.latency.max_ms
    );
    for shard in &stats.shards {
        println!(
            "  shard {:<8} queue {}/{}  served {}  warm circuits {}",
            shard.point,
            shard.queue_depth,
            shard.queue_capacity,
            shard.served,
            shard.cached_circuits
        );
    }
    server.shutdown();

    // Admission control: a queue of 2 with no workers fills after two
    // requests; the third is refused with a typed backpressure error
    // instead of queueing unboundedly.
    let (tiny, _responses) = ServeBuilder::new()
        .hardware_point("tiny", SystemConfig::paper_two_node_32())
        .workers_per_shard(0)
        .queue_capacity(2)
        .spawn()?;
    let bell = Arc::new(ghz_chain(2));
    let request = EvalRequest::new("bell", bell, "tiny", Design::AdaptBuf);
    tiny.submit(request.clone())?;
    tiny.submit(request.clone())?;
    match tiny.submit(request) {
        Err(ServeError::Overloaded { point, capacity }) => {
            println!("\nbackpressure: shard `{point}` refused request (queue capacity {capacity})");
        }
        other => println!("\nunexpected admission outcome: {other:?}"),
    }
    Ok(())
}
