//! Teleportation under the microscope: verify the remote-gate protocol
//! with the stabilizer simulator, then quantify its fidelity with the
//! density-matrix engine.
//!
//! ```sh
//! cargo run --release --example teleportation
//! ```
//!
//! Part 1 runs the paper's Fig. 1(c) CNOT-teleportation circuit on the CHP
//! tableau simulator with live measurement outcomes and Pauli-frame
//! corrections, checking it against a direct CNOT for random stabilizer
//! inputs. Part 2 evaluates the same protocol with noisy components
//! (Werner Bell pair, depolarizing CNOTs, noisy readout) and prints the
//! link-fidelity → gate-fidelity curve the executor uses.

use dqc::sim::{teleported_cnot_fidelity, Tableau, TeleportNoise};
use dqc::types::Tick;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    part1_exact_protocol();
    part2_noisy_fidelity();
}

/// Telegate CNOT on stabilizer states: exact verification.
fn part1_exact_protocol() {
    println!("== Part 1: exact CNOT teleportation (stabilizer check)");
    let mut rng = StdRng::seed_from_u64(42);
    let trials = 200;
    for trial in 0..trials {
        // Random 2-qubit stabilizer input on data qubits (0, 1).
        let prep: Vec<u8> = (0..8).map(|_| rng.random_range(0..4u8)).collect();
        let mut t = Tableau::new(4);
        apply_prep(&mut t, &prep);
        // Bell pair on (2, 3): one half per node.
        t.h(2);
        t.cx(2, 3);
        // Fig. 1(c): CNOT d0→b0, measure b0, X-correct b1,
        //            CNOT b1→d1, H b1, measure b1, Z-correct d0.
        t.cx(0, 2);
        if t.measure(2, &mut rng) {
            t.x_gate(3);
        }
        t.cx(3, 1);
        t.h(3);
        if t.measure(3, &mut rng) {
            t.z_gate(0);
        }
        // Undo the reference computation: direct CNOT, then the prep.
        t.cx(0, 1);
        unapply_prep(&mut t, &prep);
        for q in 0..2 {
            assert_eq!(
                t.deterministic_outcome(q),
                Some(false),
                "trial {trial}: teleported CNOT deviated from direct CNOT"
            );
        }
    }
    println!("   {trials} random stabilizer inputs: teleported CNOT == direct CNOT\n");
}

fn apply_prep(t: &mut Tableau, prep: &[u8]) {
    for (i, &g) in prep.iter().enumerate() {
        let q = i % 2;
        match g {
            0 => t.h(q),
            1 => t.s(q),
            2 => t.cx(q, 1 - q),
            _ => t.x_gate(q),
        }
    }
}

fn unapply_prep(t: &mut Tableau, prep: &[u8]) {
    for (i, &g) in prep.iter().enumerate().rev() {
        let q = i % 2;
        match g {
            0 => t.h(q),
            1 => t.sdg(q),
            2 => t.cx(q, 1 - q),
            _ => t.x_gate(q),
        }
    }
}

/// The fidelity law the DQC executor consumes.
fn part2_noisy_fidelity() {
    println!("== Part 2: noisy teleported-CNOT fidelity (density matrix)");
    println!("   Table II components: CNOT 99.9%, measurement 99.8%, 1Q 99.99%");
    println!("{:>14} {:>18}", "link fidelity", "gate fidelity");
    for link in [1.0, 0.99, 0.97, 0.95, 0.90, 0.80] {
        let noise = TeleportNoise::table_ii().with_bell_fidelity(link);
        let f = teleported_cnot_fidelity(&noise);
        println!("{link:>14.2} {:>18.4}", f.value());
    }
    // Show what buffer idling does to a fresh 0.99 link.
    println!("\n   idling decay of a 0.99 link (1/kappa = 500 CNOT units):");
    let kappa_per_tick = 2e-4;
    for idle_cnots in [0i64, 10, 50, 100, 200] {
        let link = dqc::sim::werner_fidelity_after(
            0.99,
            kappa_per_tick * (Tick::CNOT * idle_cnots).ticks() as f64,
        );
        let gate = teleported_cnot_fidelity(&TeleportNoise::table_ii().with_bell_fidelity(link));
        println!(
            "   idle {idle_cnots:>4} CNOT-units: link {link:.4} -> remote gate {:.4}",
            gate.value()
        );
    }
}
