//! The paper's §III-D adaptive scheduling, step by step: segmentation,
//! ASAP/ALAP variant compilation, and the runtime lookup rule.
//!
//! ```sh
//! cargo run --release --example adaptive_scheduling
//! ```

use dqc::circuit::render;
use dqc::circuit::Circuit;
use dqc::core::{alap_variant, asap_variant, segment_sequence};
use dqc::partition::QubitMap;
use dqc::workloads::PaperBenchmark;
use dqc::{CompiledCircuit, Design, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    variant_compilation();
    segmentation();
    runtime_lookup()?;
    Ok(())
}

/// Show ASAP/ALAP variants of a QAOA-style segment (the paper's Fig. 4).
fn variant_compilation() {
    println!("== Segment variants (paper Fig. 4)");
    // 4 qubits on 2 nodes: qubits 0,1 on node0; 2,3 on node1.
    let map = QubitMap::contiguous(4, 2);
    let mut seg = Circuit::new(4);
    seg.rz(0, 0.1)
        .rzz(0, 1, 0.2) // local
        .rzz(1, 2, 0.3) // REMOTE
        .rz(2, 0.4)
        .rzz(2, 3, 0.5); // local

    println!("original segment (rzz(1,2) is the remote gate):");
    print!("{}", render(&seg));

    let mut asap = Circuit::new(4);
    for op in asap_variant(seg.operations(), &map) {
        asap.push_operation(op);
    }
    println!("ASAP variant — remote gate commuted to the front:");
    print!("{}", render(&asap));

    let mut alap = Circuit::new(4);
    for op in alap_variant(seg.operations(), &map) {
        alap.push_operation(op);
    }
    println!("ALAP variant — remote gate commuted to the back:");
    print!("{}", render(&alap));
    println!();
}

/// Show how a benchmark splits into m-remote-gate segments.
fn segmentation() {
    println!("== Segmentation of QAOA-r8-32");
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let map = dqc::partition::partition_circuit(&circuit, 2, config.partition_seed)
        .expect("benchmark partitions");
    let m = config.segment_remote_gates();
    let segments = segment_sequence(circuit.operations(), &map, m);
    println!(
        "  {} gates, {} remote -> {} segments of m = {m} remote gates each",
        circuit.len(),
        map.count_remote(&circuit),
        segments.len()
    );
    println!();
}

/// Run the adaptive design and report which variants the controller chose.
fn runtime_lookup() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Runtime variant lookup (e > m -> ASAP, e = 0 -> ALAP)");
    let config = SystemConfig::paper_two_node_32();
    for bench in [PaperBenchmark::QaoaR8_32, PaperBenchmark::Qft32] {
        // The compilation carries the segment table and variants; the
        // controller only consults the buffer level at run time.
        let compiled = CompiledCircuit::compile(&bench.circuit(), &config)?;
        let report = compiled.run(Design::AdaptBuf, 11)?;
        let (orig, asap, alap) = report.variant_counts;
        println!(
            "  {bench}: {orig} original / {asap} ASAP / {alap} ALAP segments, \
             depth {:.1} ({:.2}x ideal)",
            report.depth_cnot_units(),
            report.depth_relative_to_ideal()
        );
    }
    Ok(())
}
