//! Quickstart: evaluate one benchmark on every DQC design.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's QAOA-r4-32 benchmark, partitions it across two
//! 16-data-qubit nodes, and compares all six architecture designs on
//! depth and fidelity.

use dqc::core::{evaluate_many, Design, SystemConfig};
use dqc::workloads::PaperBenchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = PaperBenchmark::QaoaR4_32;
    let circuit = bench.circuit();
    println!(
        "{bench}: {} qubits, {} gates, unit depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );

    let config = SystemConfig::paper_two_node_32();
    println!(
        "system: {} nodes x ({} data + {} comm + {} buffer) qubits, psucc = {}\n",
        config.num_nodes,
        config.data_qubits_per_node,
        config.comm_qubits_per_node,
        config.buffer_qubits_per_node,
        config.success_probability
    );

    println!("{:<10} {:>10} {:>12} {:>10}", "design", "depth", "vs ideal", "fidelity");
    for design in Design::ALL {
        let avg = evaluate_many(&circuit, &config, design, 20, 1)?;
        println!(
            "{:<10} {:>10.1} {:>11.2}x {:>10.4}",
            design.name(),
            avg.mean_depth,
            avg.mean_depth_relative,
            avg.mean_fidelity
        );
    }

    println!("\nTakeaways (the paper's three co-design principles):");
    println!(" 1. buffering (sync_buf)   — biggest depth cut vs original");
    println!(" 2. asynchrony (async_buf) — smooths arrivals, trims waste");
    println!(" 3. adaptivity (adapt_buf/init_buf) — consumes EPR pairs when fresh");
    Ok(())
}
