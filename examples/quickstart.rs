//! Quickstart: evaluate one benchmark on every DQC design.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's QAOA-r4-32 benchmark, partitions it across two
//! 16-data-qubit nodes, and compares all six architecture designs on
//! depth and fidelity.

use dqc::workloads::PaperBenchmark;
use dqc::{Design, Experiment, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = PaperBenchmark::QaoaR4_32;
    let circuit = bench.circuit();
    println!(
        "{bench}: {} qubits, {} gates, unit depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );

    let config = SystemConfig::paper_two_node_32();
    println!(
        "system: {} nodes x ({} data + {} comm + {} buffer) qubits, psucc = {}\n",
        config.num_nodes,
        config.data_qubits_per_node,
        config.comm_qubits_per_node,
        config.buffer_qubits_per_node,
        config.success_probability
    );

    // Compile once; every design below reuses the same partition map,
    // segments, and pre-built ASAP/ALAP variants.
    let experiment = Experiment::new(&circuit, &config)?.runs(20).base_seed(1);
    println!(
        "{:<10} {:>10} {:>12} {:>10}",
        "design", "depth", "vs ideal", "fidelity"
    );
    for design in Design::ALL {
        let avg = experiment.clone().design(design).run()?;
        println!(
            "{:<10} {:>10.1} {:>11.2}x {:>10.4}",
            design.name(),
            avg.mean_depth,
            avg.mean_depth_relative,
            avg.mean_fidelity
        );
    }

    println!("\nTakeaways (the paper's three co-design principles):");
    println!(" 1. buffering (sync_buf)   — biggest depth cut vs original");
    println!(" 2. asynchrony (async_buf) — smooths arrivals, trims waste");
    println!(" 3. adaptivity (adapt_buf/init_buf) — consumes EPR pairs when fresh");
    Ok(())
}
