//! Watch the entanglement service run: synchronous bursts vs asynchronous
//! trickle, buffering, cutoff waste, and pre-initialization.
//!
//! ```sh
//! cargo run --release --example entanglement_service
//! ```

use dqc::entanglement::{CutoffPolicy, EntanglementService, GenerationPattern, ServiceConfig};
use dqc::types::Tick;

fn main() {
    arrival_patterns();
    buffer_dynamics();
    preinitialization();
}

/// The paper's Fig. 3: arrival histograms.
fn arrival_patterns() {
    println!("== Arrival patterns (10 comm pairs, psucc = 0.4, T_EG = 10 T_local)");
    for (label, pattern) in [
        ("synchronous", GenerationPattern::Synchronous),
        (
            "asynchronous",
            GenerationPattern::Asynchronous { groups: 10 },
        ),
    ] {
        let config = ServiceConfig {
            pattern,
            buffer_capacity: 10_000,
            cutoff: CutoffPolicy::Keep,
            ..ServiceConfig::default()
        };
        let mut svc = EntanglementService::new(config, 7);
        svc.advance_to(Tick::new(1000));
        let mut hist = [0usize; 100];
        for &a in svc.arrivals() {
            hist[(a.ticks() / 10).min(99) as usize] += 1;
        }
        let line: String = hist
            .iter()
            .map(|&c| match c {
                0 => '.',
                1 => '+',
                _ => '#',
            })
            .collect();
        println!("  {label:>12}: {line}  ({} links)", svc.arrivals().len());
    }
    println!();
}

/// Buffer occupancy and cutoff waste under periodic demand.
fn buffer_dynamics() {
    println!("== Buffer dynamics with a remote gate every 5 T_local");
    for (label, pattern) in [
        ("synchronous", GenerationPattern::Synchronous),
        (
            "asynchronous",
            GenerationPattern::Asynchronous { groups: 10 },
        ),
    ] {
        let config = ServiceConfig {
            pattern,
            cutoff: CutoffPolicy::MaxAge(Tick::new(150)),
            ..ServiceConfig::default()
        };
        let mut svc = EntanglementService::new(config, 21);
        let mut served = 0;
        let mut total_age = 0i64;
        let mut t = Tick::ZERO;
        for _ in 0..100 {
            t += Tick::new(50);
            if let Some(link) = svc.try_take(t) {
                served += 1;
                total_age += link.age.ticks();
            }
        }
        let stats = svc.stats();
        println!(
            "  {label:>12}: served {served}/100 gates, mean consumed age {:>5.1}t, \
             wasted {:>3} links, peak buffer {}",
            total_age as f64 / served.max(1) as f64,
            stats.wasted,
            stats.peak_buffered
        );
    }
    println!();
}

/// Pre-initialized EPR pairs serve the first gates with zero wait.
fn preinitialization() {
    println!("== Pre-initialization (the init_buf design)");
    for preinit in [0usize, 10] {
        let mut svc = EntanglementService::new(ServiceConfig::default(), 3);
        svc.preinitialize(preinit);
        let mut waits = Vec::new();
        let mut t = Tick::ZERO;
        for _ in 0..10 {
            let ready = svc.time_of_next_available(t);
            let _ = svc.try_take(ready);
            waits.push((ready - t).ticks());
            t = ready + Tick::new(61); // remote-gate latency
        }
        println!(
            "  preinit {preinit:>2}: first-10-gate waits {waits:?} (total {}t)",
            waits.iter().sum::<i64>()
        );
    }
}
