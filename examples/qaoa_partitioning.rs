//! End-to-end domain walkthrough: solve a MaxCut instance with QAOA on a
//! two-node distributed machine.
//!
//! ```sh
//! cargo run --release --example qaoa_partitioning
//! ```
//!
//! Generates a random 4-regular MaxCut instance, builds its QAOA circuit,
//! compares the multilevel partitioner against a naive contiguous split,
//! runs the co-designed architecture, and sanity-checks the application
//! output with a statevector simulation of a small instance.

use dqc::partition::{partition_circuit, QubitMap};
use dqc::sim::Statevector;
use dqc::workloads::{cut_value, qaoa_maxcut, random_regular_graph, QaoaAngles};
use dqc::{Design, Experiment, SystemConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the MaxCut instance ------------------------------------------
    let n = 32u32;
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let edges = random_regular_graph(n as usize, 4, &mut rng)?;
    let circuit = qaoa_maxcut(n, &edges, &[QaoaAngles::default()]);
    println!(
        "MaxCut on a 4-regular graph: {} vertices, {} edges; QAOA circuit {} gates",
        n,
        edges.len(),
        circuit.len()
    );

    // ---- partitioning quality -----------------------------------------
    let smart = partition_circuit(&circuit, 2, 99)?;
    let naive = QubitMap::contiguous(n, 2);
    println!(
        "remote gates: multilevel partitioner {} vs contiguous blocks {}",
        smart.count_remote(&circuit),
        naive.count_remote(&circuit)
    );

    // ---- distributed execution -----------------------------------------
    let config = SystemConfig::paper_two_node_32();
    let experiment = Experiment::new(&circuit, &config)?.runs(15).base_seed(5);
    println!("\n{:<10} {:>9} {:>10}", "design", "depth", "fidelity");
    for design in [
        Design::Original,
        Design::SyncBuf,
        Design::AdaptBuf,
        Design::Ideal,
    ] {
        let avg = experiment.clone().design(design).run()?;
        println!(
            "{:<10} {:>9.1} {:>10.4}",
            design.name(),
            avg.mean_depth,
            avg.mean_fidelity
        );
    }

    // ---- application-level sanity check on a small instance ------------
    // QAOA is variational: grid-search the angles on an exactly simulable
    // 12-qubit instance and verify the optimized expected cut beats a
    // uniformly random assignment.
    let small_n = 12u32;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let small_edges = random_regular_graph(small_n as usize, 4, &mut rng)?;
    let expected_cut = |angles: QaoaAngles| -> f64 {
        let circuit = qaoa_maxcut(small_n, &small_edges, &[angles]);
        let mut sv = Statevector::zero_state(small_n);
        sv.apply_circuit(&circuit).expect("unitary circuit");
        (0..(1usize << small_n))
            .map(|idx| {
                let p = sv.probability(idx);
                if p == 0.0 {
                    return 0.0;
                }
                let assignment: Vec<bool> = (0..small_n)
                    .map(|q| (idx >> (small_n - 1 - q)) & 1 == 1)
                    .collect();
                p * cut_value(&small_edges, &assignment) as f64
            })
            .sum()
    };
    let mut best = (QaoaAngles::default(), f64::MIN);
    for gi in 1..8 {
        for bi in 1..8 {
            let angles = QaoaAngles {
                gamma: gi as f64 * std::f64::consts::PI / 16.0,
                beta: bi as f64 * std::f64::consts::PI / 16.0,
            };
            let value = expected_cut(angles);
            if value > best.1 {
                best = (angles, value);
            }
        }
    }
    let uniform_cut = small_edges.len() as f64 / 2.0;
    println!(
        "\n12-qubit variational check: best angles (gamma {:.2}, beta {:.2}) give \
         expected cut {:.2} vs random {uniform_cut:.2}",
        best.0.gamma, best.0.beta, best.1
    );
    assert!(
        best.1 > uniform_cut,
        "optimized one-round QAOA must beat a uniformly random cut"
    );
    println!("QAOA beats the random baseline — application output is meaningful.");
    Ok(())
}
