//! Co-design search: find the Pareto-optimal hardware/software points.
//!
//! ```sh
//! cargo run --release --example codesign
//! ```
//!
//! Builds a typed design space around the paper's two-node 32-qubit
//! system — EPR fidelity × comm/buffer provisioning × architecture
//! design — and searches it exhaustively on the remote-heavy QAOA-r8-32
//! benchmark, then prints the Pareto frontier over (end-to-end fidelity,
//! depth relative to ideal, hardware cost). A seeded random sample of the
//! same space shows the cheap first-pass strategy for larger spaces.

use dqc::workloads::PaperBenchmark;
use dqc::{Codesign, Design, DesignSpace, SearchStrategy, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hardware axes: how good are the links, how many comm/buffer qubits
    // per node. Software axis: which buffering design runs on it.
    let space = DesignSpace::new(SystemConfig::paper_two_node_32())
        .epr_fidelities(&[0.95, 0.99])
        .comm_and_buffer(&[5, 10, 20])
        .designs(&[
            Design::Original,
            Design::SyncBuf,
            Design::AsyncBuf,
            Design::AdaptBuf,
        ]);
    println!(
        "design space: {} axes, {} points\n",
        space.axes().len(),
        space.len()
    );

    let result = Codesign::benchmark(PaperBenchmark::QaoaR8_32, space.clone())
        .runs(5)
        .base_seed(2025)
        .run()?;

    println!(
        "Pareto frontier ({} of {} points):",
        result.frontier.len(),
        result.candidates.len()
    );
    for c in result.frontier_candidates() {
        println!(
            "  {:<55} depth {:>6.2}x  fidelity {:.4}  cost {:>6.1}",
            c.key.point_label(),
            c.objectives.depth_relative,
            c.objectives.fidelity,
            c.objectives.hardware_cost
        );
    }
    if let Some(best) = result.best_fidelity() {
        println!("\nhighest-fidelity frontier point: {}", best.key);
    }

    // The same space under a seeded random sample — the strategy to reach
    // for when the grid is too large to enumerate.
    let sampled = Codesign::benchmark(PaperBenchmark::QaoaR8_32, space)
        .strategy(SearchStrategy::RandomSample {
            samples: 8,
            seed: 7,
        })
        .runs(5)
        .base_seed(2025)
        .run()?;
    println!(
        "\nrandom sample: {} points evaluated, {} on its frontier",
        sampled.candidates.len(),
        sampled.frontier.len()
    );
    Ok(())
}
