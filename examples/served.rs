//! The network daemon: serve evaluations over TCP with a QASM front
//! door and per-client quotas.
//!
//! ```sh
//! cargo run --release --example served
//! ```
//!
//! Binds a [`dqc::Served`] daemon on a loopback port, then connects a
//! [`dqc::ServedClient`] and submits the same circuit twice — once as a
//! structured JSON payload, once as OpenQASM 2.0 text — showing that
//! both travel formats land on one warm compile-cache entry. A second,
//! quota-capped scenario shows a greedy client throttled with a typed
//! `QuotaExceeded` while the daemon's stats keep the ledger.
//!
//! Everything here also works from outside the process: launch
//! `cargo run --release --bin dqc-served` and point any frame-speaking
//! client (or `serve-bench --wire --connect ADDR`) at it.

use dqc::circuit::to_qasm;
use dqc::served::{QuotaScope, Submission, WireError};
use dqc::workloads::qft;
use dqc::{Design, ServedBuilder, ServedClient, SystemConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A daemon on an OS-assigned loopback port: one hardware point, two
    // workers, everything else at serving defaults.
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(2)
        .bind("127.0.0.1:0")?;
    let addr = daemon.local_addr().to_string();
    println!("daemon listening on {addr}");

    let mut client = ServedClient::connect(&addr, "example")?;
    let welcome = client.welcome();
    println!(
        "connected to {} (protocol v{}), points {:?}\n",
        welcome.server, welcome.protocol, welcome.points
    );

    // The same circuit in both travel formats. The QASM text parses to
    // a fingerprint-identical circuit, so the second submission is a
    // cache hit on the entry the first one warmed.
    let circuit = Arc::new(qft(16));
    let structured =
        Submission::structured("qft-16", Arc::clone(&circuit), "paper", Design::AdaptBuf)
            .runs(3)
            .base_seed(7);
    let qasm = Submission::qasm("qft-16", to_qasm(&circuit), "paper", Design::AdaptBuf)
        .runs(3)
        .base_seed(7);
    for submission in [structured, qasm] {
        client.submit(&submission)?;
        let reply = client.recv_reply()?;
        let output = reply.outcome?;
        let avg = output.reports[0].fidelity.value();
        println!(
            "  {:<8} {}  first-seed fidelity {:.4}  [{:.2} ms]",
            output.label,
            if output.cache_hit { "warm" } else { "cold" },
            avg,
            output.latency_ms,
        );
    }

    let (serve, wire) = client.stats()?;
    println!(
        "\nserved {} requests, {} cache hits / {} misses, {} connections\n",
        serve.served, serve.cache_hits, serve.cache_misses, wire.connections_accepted
    );
    client.bye()?;
    daemon.shutdown();

    // Multi-tenant admission: cap each client at 2 in-flight requests
    // on an accept-only daemon, then pile on. The third submission is
    // refused with a typed, retryable quota error naming the client.
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(0)
        .max_in_flight(2)
        .bind("127.0.0.1:0")?;
    let mut greedy = ServedClient::connect(daemon.local_addr().to_string(), "greedy")?;
    let submission = Submission::structured("qft-16", circuit, "paper", Design::AdaptBuf);
    greedy.submit(&submission)?;
    greedy.submit(&submission)?;
    greedy.submit(&submission)?;
    match greedy.recv_reply()?.outcome {
        Err(WireError::QuotaExceeded {
            client,
            scope,
            limit,
        }) => {
            debug_assert_eq!(scope, QuotaScope::InFlight);
            println!("quota: client `{client}` throttled at {limit} in-flight requests");
        }
        other => println!("unexpected admission outcome: {other:?}"),
    }
    drop(greedy);
    let wire = daemon.shutdown().daemon;
    println!("daemon ledger: {} quota rejections", wire.quota_rejected);
    Ok(())
}
