//! Beyond the paper: scaling from 2 to 4 QPU nodes on a 2D Ising grid.
//!
//! ```sh
//! cargo run --release --example multi_node
//! ```
//!
//! The paper evaluates a two-node system; the partitioner and executor in
//! this workspace generalize to k nodes (recursive bisection + one
//! entanglement service per node pair). A 2D grid workload shows why this
//! matters: its interaction graph quarters naturally.

use dqc::partition::partition_circuit;
use dqc::workloads::{ising_2d, TlimParams};
use dqc::{Design, Experiment, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 grid: 64 qubits, quarters into 4 blocks of 16.
    let circuit = ising_2d(8, 8, 5, TlimParams::default());
    println!(
        "2D Ising 8x8: {} qubits, {} gates, depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );

    for nodes in [2usize, 4] {
        let map = partition_circuit(&circuit, nodes, 17)?;
        println!(
            "\n== {nodes} nodes: {} qubits/node, {} remote gates",
            map.qubits_per_node()[0],
            map.count_remote(&circuit)
        );
        let mut config = SystemConfig::paper_two_node_64();
        config.num_nodes = nodes;
        config.data_qubits_per_node = 64 / nodes;
        let experiment = Experiment::new(&circuit, &config)?.runs(10).base_seed(3);
        println!(
            "{:<10} {:>9} {:>12} {:>10}",
            "design", "depth", "vs ideal", "fidelity"
        );
        for design in [
            Design::Original,
            Design::SyncBuf,
            Design::AdaptBuf,
            Design::Ideal,
        ] {
            let avg = experiment.clone().design(design).run()?;
            println!(
                "{:<10} {:>9.1} {:>11.2}x {:>10.4}",
                design.name(),
                avg.mean_depth,
                avg.mean_depth_relative,
                avg.mean_fidelity
            );
        }
    }

    println!(
        "\nNote: with 4 nodes each node's communication qubits split across \
         3 links,\nso per-pair entanglement rates drop — the co-design \
         trade-off the paper's\ntwo-node study does not reach."
    );
    Ok(())
}
