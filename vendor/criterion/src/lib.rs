//! Vendored minimal benchmarking harness exposing the slice of the
//! `criterion` API this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are wall-clock means over `sample_size` samples after one
//! warm-up sample — adequate for the relative comparisons the benches
//! print, with none of upstream criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Times one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, &id.into(), &mut f);
        self
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.sample_size, &id, &mut f);
        self
    }

    /// Ends the group (upstream-API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(samples: usize, id: &str, f: &mut F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    // Warm-up sample; also sizes the iteration count so one sample takes
    // a measurable amount of time.
    f(&mut bencher);
    while bencher.elapsed_ns < 10_000.0 && bencher.iters < 1 << 20 {
        bencher.iters *= 8;
        f(&mut bencher);
    }
    let mut total_ns = 0.0;
    for _ in 0..samples {
        f(&mut bencher);
        total_ns += bencher.elapsed_ns;
    }
    let mean_ns = total_ns / (samples as f64 * bencher.iters as f64);
    println!(
        "{id:<50} {:>14}/iter  ({samples} samples)",
        format_ns(mean_ns)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }
}

/// Declares a benchmark group function, mirroring upstream criterion's
/// macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_bench(c: &mut Criterion) {
        let mut calls = 0u64;
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        counting_bench(&mut c);
        let mut group = c.benchmark_group("group");
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    criterion_group!(smoke, counting_bench);

    #[test]
    fn macro_group_is_callable() {
        smoke();
    }
}
