//! Vendored ChaCha-based generator implementing this workspace's `rand`
//! shim traits.
//!
//! This is a genuine ChaCha8 keystream (the real quarter-round network,
//! 8 rounds, 64-bit block counter) — deterministic per seed and of
//! cryptographic quality — but its `u64` output framing is not guaranteed
//! to match the upstream `rand_chacha` crate's. All in-repo seeds were
//! calibrated against this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
/// use rand_chacha::ChaCha8Rng;
///
/// let mut a = ChaCha8Rng::seed_from_u64(42);
/// let mut b = ChaCha8Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 0..8, then the 64-bit block counter (two words), then a
    /// zero nonce.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // One double round: four column rounds, four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let draws = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..40).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn keystream_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }

    #[test]
    fn from_seed_uses_all_key_bytes() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s2[31] = 1;
        let mut a = ChaCha8Rng::from_seed(s1);
        let mut b = ChaCha8Rng::from_seed(s2);
        assert_ne!(a.next_u64(), b.next_u64());
        s1[0] = 1;
        let mut c = ChaCha8Rng::from_seed(s1);
        let mut d = ChaCha8Rng::seed_from_u64(0);
        assert_ne!(c.next_u64(), d.next_u64());
    }
}
