//! Sequence helpers.

use crate::Rng;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn shuffle_depends_on_seed() {
        let shuffle_with = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffle_with(1), shuffle_with(1));
        assert_ne!(shuffle_with(1), shuffle_with(2));
    }
}
