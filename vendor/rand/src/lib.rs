//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries its own implementation of the traits the simulation code was
//! written against: [`Rng`] (aliased as [`RngExt`]), [`SeedableRng`],
//! [`seq::SliceRandom`], and [`rngs::StdRng`].
//!
//! Streams are deterministic per seed (the property every simulation test
//! relies on) but are **not** bit-compatible with the upstream `rand`
//! crate — all in-repo seeds were calibrated against this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// SplitMix64 step, used to expand a `u64` seed into full seed material
/// (the same expansion scheme upstream `SeedableRng::seed_from_u64` uses).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable random-number generator.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material via SplitMix64 and
    /// constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A random-number generator: one required method ([`Rng::next_u64`]) plus
/// the sampling helpers the workspace calls.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x: u32 = rng.random_range(0..10);
/// assert!(x < 10);
/// let p = rng.random_range(0.0..1.0f64);
/// assert!((0.0..1.0).contains(&p));
/// ```
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }

    /// A uniform value in `[0, 1)` with 53 bits of precision.
    fn random_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit_f64() < p
    }

    /// Samples uniformly from a range, e.g. `0..10` or `0.0..1.0`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Alias kept because parts of the workspace import the sampling helpers
/// under the `RngExt` name (as in newer upstream `rand` releases).
pub use Rng as RngExt;

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` via Lemire's widening-multiply method
/// (bias is rejected by re-rolling the low word).
fn sample_below(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound.max(1) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = sample_below(rng, span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let offset = sample_below(rng, span as u64);
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = rng.random_unit_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // The closed upper endpoint has measure zero; sampling the
                // half-open interval is statistically equivalent.
                let unit = rng.random_unit_f64() as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut c = StdRng::seed_from_u64(12);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(5..17);
            assert!((5..17).contains(&v));
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
