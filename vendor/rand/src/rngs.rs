//! Bundled generators.

use crate::{Rng, SeedableRng};

/// The workspace's default generator: xoshiro256++ (small, fast, and
/// statistically strong enough for Monte-Carlo simulation).
///
/// Not reproducible against upstream `rand`'s `StdRng` — only against
/// itself, per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }
}
