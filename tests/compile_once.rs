//! Exact compile-count accounting for the engine's compile-once
//! guarantee.
//!
//! `dqc::core::compile_count()` is a process-global counter, so exact
//! before/after deltas are only meaningful when nothing else compiles
//! concurrently. This file therefore holds a **single** test: cargo gives
//! every integration-test file its own process, and a binary with one
//! test has no intra-process parallelism to race against.

use dqc::workloads::PaperBenchmark;
use dqc::{Design, Experiment, Sweep, SystemConfig};

#[test]
fn compile_count_is_exactly_once_per_circuit_config_cell() {
    // Acceptance: `CompiledCircuit` is constructed exactly once per
    // (circuit, config) cell across all seeds and designs that share it.
    let benches = [PaperBenchmark::Tlim32, PaperBenchmark::QaoaR8_32];

    // A sweep over 2 benchmarks × 2 configs × 6 designs × 5 seeds
    // compiles exactly 2 × 2 = 4 times.
    let before = dqc::core::compile_count();
    let result = Sweep::new()
        .benchmarks(benches)
        .config("c10", SystemConfig::paper_two_node_32())
        .config(
            "c20",
            SystemConfig::paper_two_node_32().with_comm_and_buffer(20),
        )
        .designs(&Design::ALL)
        .runs(5)
        .run()
        .unwrap();
    let sweep_compiles = dqc::core::compile_count() - before;
    assert_eq!(result.compilations, 4);
    assert_eq!(
        sweep_compiles, 4,
        "sweep must compile once per (circuit, config), never per seed or design"
    );

    // An experiment reused across all six designs compiles exactly once.
    let circuit = PaperBenchmark::Tlim32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let before = dqc::core::compile_count();
    let experiment = Experiment::new(&circuit, &config).unwrap();
    for design in Design::ALL {
        let _ = experiment.clone().design(design).runs(5).run().unwrap();
    }
    assert_eq!(
        dqc::core::compile_count() - before,
        1,
        "six designs × 5 runs reuse a single compilation"
    );
}
