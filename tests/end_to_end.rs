//! End-to-end integration: workload generation → partitioning →
//! distributed execution, across every design and benchmark, through the
//! compile-once engine.

use dqc::partition::partition_circuit;
use dqc::workloads::PaperBenchmark;
use dqc::{CompiledCircuit, Design, DqcError, Experiment, SystemConfig};

fn config_for(bench: PaperBenchmark) -> SystemConfig {
    if bench.num_qubits() == 64 {
        SystemConfig::paper_two_node_64()
    } else {
        SystemConfig::paper_two_node_32()
    }
}

#[test]
fn every_benchmark_runs_on_every_design() {
    for bench in PaperBenchmark::ALL {
        let compiled = CompiledCircuit::compile(&bench.circuit(), &config_for(bench))
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        for design in Design::ALL {
            let report = compiled
                .run(design, 1)
                .unwrap_or_else(|e| panic!("{bench} on {design}: {e}"));
            assert!(report.makespan.ticks() > 0, "{bench}/{design}");
            assert!(report.fidelity.value() >= 0.0 && report.fidelity.value() <= 1.0);
            if design == Design::Ideal {
                assert_eq!(report.remote_gates, 0);
            } else {
                assert!(report.remote_gates > 0, "{bench} must have remote gates");
            }
        }
    }
}

#[test]
fn reports_are_reproducible_per_seed() {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
    for design in Design::ALL {
        let a = compiled.run(design, 77).unwrap();
        let b = compiled.run(design, 77).unwrap();
        assert_eq!(a, b, "{design} must be deterministic per seed");
    }
}

#[test]
fn remote_gate_counts_agree_between_partitioner_and_executor() {
    for bench in PaperBenchmark::ALL {
        let circuit = bench.circuit();
        let config = config_for(bench);
        let map = partition_circuit(&circuit, config.num_nodes, config.partition_seed).unwrap();
        let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
        assert_eq!(
            compiled.remote_gates(),
            map.count_remote(&circuit),
            "{bench}: compilation must agree with a direct partition"
        );
        let report = compiled.run(Design::AsyncBuf, 5).unwrap();
        assert_eq!(
            report.remote_gates,
            map.count_remote(&circuit),
            "{bench}: executor must run exactly the cut gates"
        );
    }
}

#[test]
fn adaptive_designs_execute_all_gates_despite_reordering() {
    // The adaptive executor permutes segments; the gate count served by
    // the entanglement supply must equal the remote-gate count.
    let circuit = PaperBenchmark::Qft32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
    for design in [Design::AdaptBuf, Design::InitBuf] {
        let report = compiled.run(design, 3).unwrap();
        let stats = report.service_stats.expect("distributed run has stats");
        assert_eq!(stats.consumed as usize, report.remote_gates, "{design}");
        assert_eq!(report.remote_gates, 256, "QFT-32 remote gates");
    }
}

#[test]
fn entanglement_accounting_balances() {
    // successes = consumed + wasted + (links still banked at the end).
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
    for design in Design::DISTRIBUTED {
        let report = compiled.run(design, 9).unwrap();
        let stats = report.service_stats.unwrap();
        assert!(
            stats.successes + stats.preinitialized >= stats.consumed + stats.wasted,
            "{design}: successes {} + preinit {} < consumed {} + wasted {}",
            stats.successes,
            stats.preinitialized,
            stats.consumed,
            stats.wasted
        );
        assert!(stats.attempts >= stats.successes);
        assert_eq!(stats.consumed as usize, report.remote_gates);
    }
}

#[test]
fn averaging_runs_reduces_variance() {
    let circuit = PaperBenchmark::QaoaR4_32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let experiment = Experiment::new(&circuit, &config)
        .unwrap()
        .design(Design::AsyncBuf);
    // Single runs vary...
    let singles: Vec<f64> = (0..6)
        .map(|s| experiment.run_one(s).unwrap().depth_cnot_units())
        .collect();
    let spread = singles.iter().cloned().fold(f64::MIN, f64::max)
        - singles.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread > 0.0, "independent seeds should differ: {singles:?}");
    // ...while two averaged estimates over disjoint seed blocks agree better.
    let a = experiment
        .clone()
        .runs(25)
        .base_seed(0)
        .run()
        .unwrap()
        .mean_depth;
    let b = experiment
        .runs(25)
        .base_seed(1000)
        .run()
        .unwrap()
        .mean_depth;
    assert!(
        (a - b).abs() <= spread,
        "averaged means should be closer than the single-run spread"
    );
}

#[test]
fn four_node_system_executes() {
    // Beyond the paper: the same machinery on a 4-node system.
    let circuit = PaperBenchmark::Tlim32.circuit();
    let mut config = SystemConfig::paper_two_node_32();
    config.num_nodes = 4;
    config.data_qubits_per_node = 8;
    let report = CompiledCircuit::compile(&circuit, &config)
        .unwrap()
        .run(Design::AsyncBuf, 2)
        .unwrap();
    assert!(
        report.remote_gates >= 3,
        "a 4-way chain split cuts at least 3 bonds"
    );
    assert!(report.makespan > report.ideal_makespan);
}

#[test]
fn errors_surface_cleanly() {
    let circuit = PaperBenchmark::QaoaR4_64.circuit();
    let config = SystemConfig::paper_two_node_32(); // too small
    match CompiledCircuit::compile(&circuit, &config) {
        Err(DqcError::CircuitTooWide { qubits, capacity }) => {
            assert_eq!(qubits, 64);
            assert_eq!(capacity, 32);
        }
        other => panic!("expected CircuitTooWide, got {other:?}"),
    }
}
