//! Golden-file regression gate: the committed artifacts under
//! `tests/golden/` pin the paper-claims numbers at fixed seeds; this test
//! recomputes each pinned target in-process and diffs the fresh artifact
//! against the golden document with the same tolerance CI uses for
//! `repro diff`.
//!
//! The engine is deterministic (integer tick clock, seeded ChaCha
//! streams, ordered parallel collection), so the tolerance only has to
//! absorb float-formatting round-trips — which are exact — and is
//! correspondingly tight.
//!
//! To re-pin after a deliberate behavior change:
//!
//! ```text
//! cargo run --release --bin repro -- table1 fig5 topology-sweep \
//!     codesign ablate-protocol backend-matrix analyze --runs 2 \
//!     --format json --out tests/golden
//! ```

use dqc_bench::Artifact;
use dqc_types::json;
use std::path::PathBuf;

/// Runs/seed the golden artifacts were generated with (seed is
/// [`dqc_bench::BASE_SEED`], the repro default).
const GOLDEN_RUNS: usize = 2;

/// The tolerance CI applies via `repro diff --tol`.
const GOLDEN_TOL: f64 = 1e-9;

/// The pinned targets: deterministic table plus one representative of
/// each expensive sweep family (figures, topology, ablations).
const PINNED: &[&str] = &[
    "table1",
    "fig5",
    "topology-sweep",
    "codesign",
    "ablate-protocol",
    "backend-matrix",
    "analyze",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_target(target: &str) {
    let path = golden_dir().join(format!("{target}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let golden = Artifact::parse(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid artifact: {e}", path.display()));
    assert_eq!(golden.target, target, "{}", path.display());

    let fresh = Artifact::build(target, golden.runs, golden.seed)
        .unwrap_or_else(|e| panic!("recomputing {target}: {e}"));
    let diffs = json::diff(&golden.to_json(), &fresh.to_json(), GOLDEN_TOL);
    assert!(
        diffs.is_empty(),
        "{target} drifted from tests/golden/{target}.json ({} sites):\n  {}\n\
         If this change is intentional, regenerate the golden files (see \
         this file's module docs) and review the numeric diff in the PR.",
        diffs.len(),
        diffs
            .iter()
            .take(10)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

#[test]
fn golden_artifacts_use_the_documented_provenance() {
    for target in PINNED {
        let path = golden_dir().join(format!("{target}.json"));
        let golden = Artifact::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(golden.runs, GOLDEN_RUNS, "{target}: unexpected run count");
        assert_eq!(
            golden.seed,
            dqc_bench::BASE_SEED,
            "{target}: unexpected seed"
        );
    }
}

#[test]
fn table1_matches_golden() {
    check_target("table1");
}

#[test]
fn fig5_matches_golden() {
    check_target("fig5");
}

#[test]
fn topology_sweep_matches_golden() {
    check_target("topology-sweep");
}

#[test]
fn ablate_protocol_matches_golden() {
    check_target("ablate-protocol");
}

#[test]
fn codesign_matches_golden() {
    check_target("codesign");
}

#[test]
fn backend_matrix_matches_golden() {
    check_target("backend-matrix");
}

#[test]
fn golden_backend_matrix_engines_agree() {
    // The acceptance claim of the backend-matrix target, asserted from
    // the committed golden itself: for every matrix circuit, all three
    // engines report the same fidelity and depth — the analytic numbers
    // are pinned, and the stabilizer and density columns must match them
    // to the golden tolerance.
    let text = std::fs::read_to_string(golden_dir().join("backend-matrix.json")).unwrap();
    let artifact = Artifact::parse(&text).unwrap();
    let result = dqc::SweepResult::from_json(&artifact.data).expect("matrix payload parses back");
    for (label, _) in dqc_bench::backend_matrix_circuits() {
        let cell = |backend: dqc::Backend| {
            result
                .cell(&label, backend.name(), dqc::Design::AsyncBuf)
                .unwrap_or_else(|| panic!("golden matrix misses {label} × {backend}"))
        };
        let analytic = cell(dqc::Backend::Analytic);
        for backend in [dqc::Backend::Stabilizer, dqc::Backend::Density] {
            let other = cell(backend);
            assert!(
                (other.report.mean_fidelity - analytic.report.mean_fidelity).abs() <= GOLDEN_TOL,
                "{label}: {backend} fidelity {} vs analytic {}",
                other.report.mean_fidelity,
                analytic.report.mean_fidelity
            );
            assert!(
                (other.report.mean_depth - analytic.report.mean_depth).abs() <= GOLDEN_TOL,
                "{label}: {backend} depth {} vs analytic {}",
                other.report.mean_depth,
                analytic.report.mean_depth
            );
        }
    }
}

#[test]
fn analyze_matches_golden() {
    check_target("analyze");
}

#[test]
fn golden_analyze_corpus_is_clean() {
    // The acceptance claim of the analyze target, asserted from the
    // committed golden itself: the static analyzer finds nothing — not
    // even a warning — in anything the repo ships (paper benchmarks on
    // their matching points, the default serving configuration, the
    // serving portfolio).
    let text = std::fs::read_to_string(golden_dir().join("analyze.json")).unwrap();
    let artifact = Artifact::parse(&text).unwrap();
    let rows = artifact.data.as_array().expect("analyze payload is rows");
    assert!(rows.len() >= 8, "corpus shrank to {} subjects", rows.len());
    for row in rows {
        let label = row.str_field("label").unwrap();
        let report = dqc::analyze::AnalysisReport::from_json(row.field("report").unwrap()).unwrap();
        assert!(
            report.is_clean(),
            "shipped subject `{label}` has findings: {report}"
        );
    }
}

#[test]
fn golden_codesign_frontier_contains_the_paper_operating_point() {
    // The acceptance claim of the codesign target, asserted from the
    // committed golden itself (not just the generator): the paper's
    // recommended operating point — adapt_buf on the two-node 32-qubit
    // system (10 comm + 10 buffer per node, 99 % EPR fidelity) — lies on
    // the Pareto frontier over (fidelity, relative depth, hardware cost).
    let text = std::fs::read_to_string(golden_dir().join("codesign.json")).unwrap();
    let artifact = Artifact::parse(&text).unwrap();
    let result = dqc_codesign::CodesignResult::from_json(&artifact.data)
        .expect("codesign payload parses back");
    let paper_point = dqc_bench::codesign_paper_point();
    assert!(
        result.frontier_contains(&paper_point),
        "frontier must contain {paper_point}; frontier is {:?}",
        result
            .frontier_candidates()
            .iter()
            .map(|c| c.key.to_string())
            .collect::<Vec<_>>()
    );
    // And the frontier is a genuine trade-off surface, not a single
    // winner: it keeps both cheaper-but-slower and costlier-but-denser
    // neighbours of the paper point.
    assert!(result.frontier.len() >= 3, "{:?}", result.frontier);
}

#[test]
fn golden_table1_pins_the_paper_claims() {
    // Belt and braces: the golden file itself (not just the generator)
    // carries the paper's Table I numbers for the deterministic
    // benchmarks, so a silently regenerated golden cannot hide a claims
    // regression.
    let text = std::fs::read_to_string(golden_dir().join("table1.json")).unwrap();
    let artifact = Artifact::parse(&text).unwrap();
    let rows: Vec<dqc_bench::Table1Row> = artifact
        .data
        .as_array()
        .expect("table1 payload is an array")
        .iter()
        .map(|r| dqc_bench::Table1Row::from_json(r).unwrap())
        .collect();
    let tlim = rows.iter().find(|r| r.name == "TLIM-32").unwrap();
    assert_eq!((tlim.local_2q, tlim.remote_2q), (300, 10));
    let qft = rows.iter().find(|r| r.name == "QFT-32").unwrap();
    assert_eq!((qft.local_2q, qft.remote_2q, qft.depth), (240, 256, 63));
}
