//! Cross-crate substrate invariants: the partitioner against workload
//! interaction graphs, the entanglement service under arbitrary
//! configurations, and the teleportation fidelity law.

use dqc::core::{OperationFidelities, RemoteFidelityTable};
use dqc::entanglement::{
    ConsumeOrder, CutoffPolicy, EntanglementService, GenerationPattern, ServiceConfig,
};
use dqc::partition::{partition_circuit, QubitMap};
use dqc::sim::{teleported_cnot_fidelity, TeleportNoise};
use dqc::types::Tick;
use dqc::workloads::{ghz_chain, qft, random_brickwork, tlim, PaperBenchmark, TlimParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn partitioner_never_loses_to_contiguous_on_paper_benchmarks() {
    for bench in PaperBenchmark::ALL {
        let circuit = bench.circuit();
        let smart = partition_circuit(&circuit, 2, 3).unwrap();
        let naive = QubitMap::contiguous(circuit.num_qubits(), 2);
        assert!(
            smart.count_remote(&circuit) <= naive.count_remote(&circuit),
            "{bench}: partitioner {} vs contiguous {}",
            smart.count_remote(&circuit),
            naive.count_remote(&circuit)
        );
    }
}

#[test]
fn chain_workloads_cut_minimally() {
    // GHZ chains and TLIM chains have 1-bond cuts; the multilevel
    // partitioner must find them.
    let ghz = ghz_chain(32);
    let map = partition_circuit(&ghz, 2, 1).unwrap();
    assert_eq!(map.count_remote(&ghz), 1, "GHZ chain cuts a single CNOT");

    let chain = tlim(32, 1, TlimParams::default());
    let map = partition_circuit(&chain, 2, 1).unwrap();
    assert_eq!(
        map.count_remote(&chain),
        1,
        "one Trotter step cuts one bond"
    );
}

#[test]
fn qft_cut_is_invariant_to_partition() {
    // The QFT interaction graph is complete and unit-weight: every exact
    // bisection cuts exactly (n/2)² pairs, so the partitioner's output is
    // optimal by construction.
    for n in [8u32, 16, 32] {
        let circuit = qft(n);
        let map = partition_circuit(&circuit, 2, 9).unwrap();
        assert_eq!(map.count_remote(&circuit), ((n / 2) * (n / 2)) as usize);
    }
}

/// Randomized property checks, driven by a seeded generator (the workspace
/// carries no property-testing framework).
#[test]
fn partition_balance_and_consistency_on_random_brickwork() {
    // Partitions of random brickwork circuits are always exactly balanced
    // and classify every gate consistently.
    let mut gen = ChaCha8Rng::seed_from_u64(0x5B57);
    for _ in 0..24 {
        let n = gen.random_range(4u32..24) * 2; // even qubit counts
        let layers = gen.random_range(2u32..8);
        let seed = gen.random_range(0u64..1000);
        let circuit = random_brickwork(n, layers, &mut ChaCha8Rng::seed_from_u64(seed));
        let map = partition_circuit(&circuit, 2, seed).unwrap();
        let per = map.qubits_per_node();
        assert_eq!(per[0], per[1], "exact balance for even n = {n}");
        let remote = map.count_remote(&circuit);
        let local = map.count_local_2q(&circuit);
        assert_eq!(remote + local, circuit.counts().two_qubit);
    }
}

/// The entanglement service never double-books: consumed + wasted never
/// exceeds successes, and availability is never negative after arbitrary
/// advance/take interleavings.
#[test]
fn service_conservation_under_random_configurations() {
    let mut gen = ChaCha8Rng::seed_from_u64(0x5EED);
    for case in 0..24 {
        let comm = gen.random_range(1usize..12);
        let buffer = gen.random_range(0usize..12);
        let psucc = gen.random_range(0.05f64..0.95);
        let sync = gen.random_bool(0.5);
        let cutoff = if gen.random_bool(0.5) {
            Some(gen.random_range(50i64..400))
        } else {
            None
        };
        let steps = gen.random_range(1usize..40);
        let seed = gen.random_range(0u64..500);
        let config = ServiceConfig {
            num_comm_pairs: comm,
            buffer_capacity: buffer,
            success_probability: psucc,
            pattern: if sync {
                GenerationPattern::Synchronous
            } else {
                GenerationPattern::Asynchronous {
                    groups: comm.min(10),
                }
            },
            cutoff: cutoff.map_or(CutoffPolicy::Keep, |t| CutoffPolicy::MaxAge(Tick::new(t))),
            consume_order: if seed % 2 == 0 {
                ConsumeOrder::OldestFirst
            } else {
                ConsumeOrder::FreshestFirst
            },
            ..ServiceConfig::default()
        };
        let mut svc = EntanglementService::new(config, seed);
        let mut taken = 0u64;
        let mut t = Tick::ZERO;
        for i in 0..steps {
            t += Tick::new(37 * (1 + (i as i64 % 5)));
            if svc.try_take(t).is_some() {
                taken += 1;
            }
        }
        let s = *svc.stats();
        assert_eq!(s.consumed, taken, "case {case}");
        assert!(s.successes >= s.consumed + s.wasted, "case {case}");
        assert!(s.attempts >= s.successes, "case {case}");
        assert!(svc.available() <= buffer + comm, "case {case}");
    }
}

/// Consumed link fidelity is always within the physical Werner range and
/// never exceeds the fresh fidelity.
#[test]
fn consumed_fidelity_stays_physical() {
    let mut gen = ChaCha8Rng::seed_from_u64(0xF1D3);
    for _ in 0..24 {
        let seed = gen.random_range(0u64..300);
        let delay = gen.random_range(0i64..2000);
        let mut svc = EntanglementService::new(ServiceConfig::default(), seed);
        let t = svc.time_of_next_available(Tick::new(delay));
        if t != Tick::MAX {
            if let Some(link) = svc.try_take(t) {
                assert!(link.fidelity <= 0.99 + 1e-12);
                assert!(link.fidelity >= 0.25 - 1e-12);
            }
        }
    }
}

#[test]
fn remote_fidelity_table_interpolates_exactly() {
    // The affine shortcut must agree with the full density-matrix
    // evaluation at several interior points (linearity of CP maps).
    let fidelities = OperationFidelities::default();
    let table = RemoteFidelityTable::new(&fidelities);
    for link in [0.3, 0.55, 0.8, 0.95] {
        let direct = teleported_cnot_fidelity(&TeleportNoise {
            bell_fidelity: link,
            local_cnot_fidelity: fidelities.two_qubit,
            measurement_fidelity: fidelities.measurement,
            single_qubit_fidelity: fidelities.one_qubit,
        });
        let fast = table.gate_fidelity(link);
        assert!(
            (direct.value() - fast.value()).abs() < 1e-9,
            "link {link}: direct {} vs table {}",
            direct.value(),
            fast.value()
        );
    }
}

#[test]
fn degraded_hardware_degrades_remote_gates_monotonically() {
    let base = RemoteFidelityTable::new(&OperationFidelities::default());
    let worse = RemoteFidelityTable::new(&OperationFidelities {
        two_qubit: 0.99,
        measurement: 0.99,
        ..OperationFidelities::default()
    });
    for link in [0.8, 0.9, 0.99] {
        assert!(worse.gate_fidelity(link) < base.gate_fidelity(link));
    }
}
