//! Integration tests for the compile-once/run-many evaluation engine:
//! determinism, bit-for-bit equivalence between shared and per-seed
//! fresh compilations, parallel sweep ordering, and the compile-once
//! guarantee.

use dqc::workloads::PaperBenchmark;
use dqc::{CompiledCircuit, Design, DqcError, Experiment, Sweep, SystemConfig};

const SWEEP_BENCHES: [PaperBenchmark; 2] = [PaperBenchmark::Tlim32, PaperBenchmark::QaoaR8_32];
const RUNS: usize = 5;
const SEED: u64 = 2025;

#[test]
fn same_seed_yields_identical_reports() {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
    let again = CompiledCircuit::compile(&circuit, &config).unwrap();
    for design in Design::ALL {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = compiled.run(design, seed).unwrap();
            let b = compiled.run(design, seed).unwrap();
            let c = again.run(design, seed).unwrap();
            assert_eq!(a, b, "{design} seed {seed}: rerun on one compilation");
            assert_eq!(a, c, "{design} seed {seed}: independent compilations");
        }
    }
}

#[test]
fn compiled_path_matches_legacy_per_seed_path_bit_for_bit() {
    // The removed legacy free function re-partitioned the circuit and
    // re-compiled every segment variant on every call. Its exact code
    // path — compile fresh, run once — must still produce bit-for-bit
    // the reports a single shared compilation does, or compile-once
    // would be changing results rather than just hoisting work.
    let config = SystemConfig::paper_two_node_32();
    for bench in SWEEP_BENCHES {
        let circuit = bench.circuit();
        let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
        for design in Design::ALL {
            for seed in 0..4u64 {
                let legacy = CompiledCircuit::compile(&circuit, &config)
                    .unwrap()
                    .run(design, seed)
                    .unwrap();
                let fast = compiled.run(design, seed).unwrap();
                assert_eq!(legacy, fast, "{bench}/{design} seed {seed}");
            }
        }
    }
}

#[test]
fn parallel_sweep_matches_sequential_evaluate_calls() {
    // Acceptance: a Sweep over ≥2 benchmarks × all 6 designs through the
    // parallel runner produces results identical to sequential per-seed
    // compile-and-run calls with the same seeds.
    let config = SystemConfig::paper_two_node_32();
    let result = Sweep::new()
        .benchmarks(SWEEP_BENCHES)
        .config("paper", config.clone())
        .designs(&Design::ALL)
        .runs(RUNS)
        .base_seed(SEED)
        .threads(8)
        .run()
        .unwrap();
    assert_eq!(result.cells.len(), SWEEP_BENCHES.len() * Design::ALL.len());

    let mut cell = result.cells.iter();
    for bench in SWEEP_BENCHES {
        let circuit = bench.circuit();
        for design in Design::ALL {
            let got = cell.next().expect("cells are in grid order");
            assert_eq!(got.circuit, bench.to_string());
            assert_eq!(got.design, design);
            // Rebuild the cell average from sequential per-seed calls
            // over the same seeds (fresh compilation every time).
            let reports: Vec<_> = (0..RUNS)
                .map(|i| {
                    CompiledCircuit::compile(&circuit, &config)
                        .unwrap()
                        .run(design, SEED + i as u64)
                        .unwrap()
                })
                .collect();
            let expected = dqc::AveragedReport::from_runs(&reports);
            assert_eq!(got.report, expected, "{bench}/{design}");
        }
    }
}

#[test]
fn sweep_reports_one_compilation_per_cell() {
    // `SweepResult::compilations` is exact and race-free; the exact
    // process-global `compile_count()` delta is asserted in
    // tests/compile_once.rs, which runs as its own single-test process
    // (the counter is shared by every test in a binary, so exact deltas
    // here would race under parallel test threads).
    let result = Sweep::new()
        .benchmarks(SWEEP_BENCHES)
        .config("c10", SystemConfig::paper_two_node_32())
        .config(
            "c20",
            SystemConfig::paper_two_node_32().with_comm_and_buffer(20),
        )
        .designs(&Design::ALL)
        .runs(RUNS)
        .base_seed(SEED)
        .run()
        .unwrap();
    assert_eq!(
        result.compilations,
        SWEEP_BENCHES.len() * 2,
        "2 benchmarks × 2 configs compile 4 times — not once per seed or design"
    );
}

#[test]
fn experiment_shares_one_compilation_across_designs() {
    use std::sync::Arc;
    let circuit = PaperBenchmark::Tlim32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let experiment = Experiment::new(&circuit, &config).unwrap();
    for design in Design::ALL {
        let per_design = experiment.clone().design(design).runs(RUNS).base_seed(SEED);
        // Cloned experiments point at the *same* compilation — no copy,
        // no recompile.
        assert!(
            Arc::ptr_eq(experiment.compiled(), per_design.compiled()),
            "{design} must share the original compilation"
        );
        let _ = per_design.run().unwrap();
    }
}

#[test]
fn sweep_ordering_is_independent_of_thread_count() {
    let grid = |threads| {
        Sweep::new()
            .benchmarks(SWEEP_BENCHES)
            .config("paper", SystemConfig::paper_two_node_32())
            .designs(&Design::ALL)
            .runs(2)
            .base_seed(7)
            .threads(threads)
            .run()
            .unwrap()
    };
    let one = grid(1);
    let many = grid(8);
    for (a, b) in one.cells.iter().zip(&many.cells) {
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.design, b.design);
        assert_eq!(a.report, b.report);
    }
}

#[test]
fn zero_runs_surface_as_errors_everywhere() {
    let circuit = PaperBenchmark::Tlim32.circuit();
    let config = SystemConfig::paper_two_node_32();
    let from_experiment = Experiment::new(&circuit, &config)
        .unwrap()
        .runs(0)
        .run()
        .unwrap_err();
    assert_eq!(from_experiment, DqcError::ZeroRuns);
    let from_sweep = Sweep::new()
        .benchmark(PaperBenchmark::Tlim32)
        .config("paper", config.clone())
        .designs(&Design::ALL)
        .runs(0)
        .run()
        .unwrap_err();
    assert_eq!(from_sweep, DqcError::ZeroRuns);
    let from_space = dqc::DesignSpace::new(config)
        .designs(&[Design::AsyncBuf])
        .sweep()
        .benchmark(PaperBenchmark::Tlim32)
        .runs(0)
        .run()
        .unwrap_err();
    assert_eq!(from_space, DqcError::ZeroRuns);
}
