//! Wire-level contracts of the `dqc-served` daemon: crossing the TCP
//! frame protocol never changes results (byte-identical per-seed reports
//! versus direct in-process evaluation, from concurrent connections, via
//! both circuit travel formats), per-client quotas throttle a greedy
//! client without touching a polite one, malformed QASM is refused with
//! its 1-based source line intact, and a full shard queue surfaces as a
//! typed retryable `Overloaded` — all on loopback sockets the tests own.

use dqc::served::{QuotaScope, ServedBuilder, Submission, WireError, WireOutput};
use dqc::{Design, EvalRequest, Experiment, ServedClient, SystemConfig};
use std::collections::HashMap;

/// The shared request list: every portfolio circuit, alternating
/// designs, distinct seeds — identical to what the bench harness ships.
fn wire_requests() -> Vec<EvalRequest> {
    dqc_bench::portfolio_requests(
        dqc_bench::serve_portfolio().len(),
        2,
        4242,
        "paper",
        &[Design::AdaptBuf, Design::AsyncBuf],
    )
}

/// Ground truth: the same requests evaluated directly by the engine.
fn direct_report_json(requests: &[EvalRequest]) -> Vec<Vec<String>> {
    let config = SystemConfig::paper_two_node_32();
    requests
        .iter()
        .map(|request| {
            Experiment::new(&request.circuit, &config)
                .expect("portfolio circuits compile")
                .design(request.design)
                .runs(request.runs)
                .base_seed(request.base_seed)
                .reports()
                .expect("direct evaluation succeeds")
                .iter()
                .map(|report| report.to_json().to_compact_string())
                .collect()
        })
        .collect()
}

/// Pipelines every request over one connection (structured JSON or QASM
/// text) and returns the outputs in request order.
fn drive(addr: &str, client_id: &str, requests: &[EvalRequest], as_qasm: bool) -> Vec<WireOutput> {
    let mut client = ServedClient::connect(addr, client_id).expect("client connects");
    let mut tags = Vec::new();
    for request in requests {
        let submission = if as_qasm {
            Submission::qasm(
                request.circuit_label.clone(),
                dqc::circuit::to_qasm(&request.circuit),
                request.point.clone(),
                request.design,
            )
            .runs(request.runs)
            .base_seed(request.base_seed)
        } else {
            Submission::from_request(request)
        };
        tags.push(client.submit(&submission).expect("submit succeeds"));
    }
    let mut by_tag = HashMap::new();
    for _ in 0..requests.len() {
        let reply = client.recv_reply().expect("reply arrives");
        let output = reply.outcome.expect("request is admitted and succeeds");
        by_tag.insert(reply.tag, output);
    }
    client.bye().expect("clean goodbye");
    tags.into_iter()
        .map(|tag| {
            by_tag
                .remove(&tag)
                .expect("every tag answered exactly once")
        })
        .collect()
}

/// The headline contract: two concurrent connections — one speaking
/// structured JSON, one speaking OpenQASM text — both receive per-seed
/// reports byte-identical to direct in-process evaluation.
#[test]
fn wire_results_are_byte_identical_from_concurrent_connections() {
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(2)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let addr = daemon.local_addr().to_string();
    let requests = wire_requests();
    let expected = direct_report_json(&requests);

    let (json_outputs, qasm_outputs) = std::thread::scope(|scope| {
        let json = scope.spawn(|| drive(&addr, "json-client", &requests, false));
        let qasm = scope.spawn(|| drive(&addr, "qasm-client", &requests, true));
        (
            json.join().expect("json client"),
            qasm.join().expect("qasm client"),
        )
    });

    for (which, outputs) in [("json", &json_outputs), ("qasm", &qasm_outputs)] {
        for ((request, output), expected) in requests.iter().zip(outputs).zip(&expected) {
            let got: Vec<String> = output
                .reports
                .iter()
                .map(|report| report.to_json().to_compact_string())
                .collect();
            assert_eq!(
                &got, expected,
                "{which} path altered reports for {}",
                request.circuit_label,
            );
            assert_eq!(output.label, request.circuit_label);
            assert_eq!(output.point, "paper");
        }
    }

    let report = daemon.shutdown();
    let (serve, wire) = (report.serve, report.daemon);
    assert_eq!(serve.served, 2 * requests.len() as u64);
    assert_eq!(serve.errors, 0);
    assert_eq!(wire.connections_accepted, 2);
    assert_eq!(wire.quota_rejected, 0);
    assert_eq!(wire.bad_requests, 0);
    assert_eq!(wire.protocol_errors, 0);
}

/// The protocol v3 observability surface, scraped from a live daemon:
/// the `metrics` frame carries both layers' registered metrics (the
/// serving layer's per-shard `serve.*` family and the daemon's
/// `served.*` connection counters), two scrapes bracketing real traffic
/// are monotone on every counter, each result echoes a distinct
/// `trace_id`, and the final scrape's totals match the shutdown report.
#[test]
fn metrics_frames_are_monotone_and_match_shutdown_totals() {
    use dqc::obs::MetricValue;

    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(2)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let addr = daemon.local_addr().to_string();
    let requests = wire_requests();

    let mut client = ServedClient::connect(addr.as_str(), "scraper").expect("client connects");
    let first = client.metrics().expect("first metrics scrape");
    for name in [
        "served.connections_accepted",
        "served.connections_closed",
        "served.quota_rejected",
        "served.bad_requests",
        "served.protocol_errors",
        "serve.submitted{point=paper}",
        "serve.served{point=paper}",
        "serve.rejected{point=paper}",
        "serve.errors{point=paper}",
        "serve.cache_hits{point=paper}",
        "serve.cache_misses{point=paper}",
        "serve.dispatches{point=paper}",
        "serve.fused_requests{point=paper}",
        "serve.fused_replays_saved{point=paper}",
    ] {
        assert!(
            first.counter(name).is_some(),
            "`{name}` missing from the metrics frame"
        );
    }
    assert!(
        matches!(
            first.get("serve.workers{point=paper}"),
            Some(MetricValue::Gauge(_))
        ),
        "worker gauge missing"
    );
    for name in [
        "serve.queue_wait_us{point=paper}",
        "serve.service_us{point=paper}",
    ] {
        assert!(
            matches!(first.get(name), Some(MetricValue::Histogram(_))),
            "`{name}` histogram missing"
        );
    }

    let mut tags = Vec::new();
    for request in &requests {
        tags.push(
            client
                .submit(&Submission::from_request(request))
                .expect("submit succeeds"),
        );
    }
    let mut traces = Vec::new();
    for _ in 0..requests.len() {
        let reply = client.recv_reply().expect("reply arrives");
        let output = reply.outcome.expect("request succeeds");
        traces.push(output.trace_id.expect("v3 results carry a trace id"));
    }
    let mut unique = traces.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), traces.len(), "trace ids are distinct");

    let second = client.metrics().expect("second metrics scrape");
    for entry in &first.entries {
        if let MetricValue::Counter(before) = entry.value {
            let after = second
                .counter(&entry.name)
                .expect("registered counters never disappear");
            assert!(
                after >= before,
                "`{}` went backwards across scrapes: {before} -> {after}",
                entry.name
            );
        }
    }
    let served = requests.len() as u64;
    assert_eq!(second.counter("serve.served{point=paper}"), Some(served));
    match second.get("serve.service_us{point=paper}") {
        Some(MetricValue::Histogram(h)) => {
            assert_eq!(h.count, served, "service histogram saw every request");
        }
        other => panic!("expected a service histogram, got {other:?}"),
    }

    client.bye().expect("clean goodbye");
    let report = daemon.shutdown();
    assert_eq!(
        second.counter("serve.served{point=paper}"),
        Some(report.serve.served),
        "metrics frame total matches the shutdown report"
    );
    assert_eq!(
        second.counter("served.connections_accepted"),
        Some(report.daemon.connections_accepted),
    );
    assert_eq!(
        second.counter("serve.cache_hits{point=paper}"),
        Some(report.serve.cache_hits),
    );
    assert_eq!(
        second.counter("serve.cache_misses{point=paper}"),
        Some(report.serve.cache_misses),
    );
}

/// Multi-tenant admission: with a per-client in-flight cap of 2 on an
/// accept-only daemon (no workers, so nothing ever completes), a greedy
/// client's pile-on is refused with typed `QuotaExceeded` while a second
/// client's requests are all admitted untouched.
#[test]
fn greedy_client_is_throttled_while_polite_client_is_admitted() {
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(0)
        .queue_capacity(16)
        .max_in_flight(2)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let addr = daemon.local_addr().to_string();
    let requests = wire_requests();

    let mut greedy = ServedClient::connect(&addr, "greedy").expect("greedy connects");
    assert_eq!(greedy.welcome().max_in_flight, Some(2));
    for request in requests.iter().take(5) {
        greedy
            .submit(&Submission::from_request(request))
            .expect("submit");
    }
    // The two admitted requests sit in the queue forever; the three over
    // quota are refused immediately, each with the client's identity,
    // the tripped scope, and the configured limit.
    for _ in 0..3 {
        let reply = greedy.recv_reply().expect("refusal arrives");
        let error = reply.outcome.expect_err("over-quota submit is refused");
        assert!(error.is_backpressure(), "quota refusals are retryable");
        match error {
            WireError::QuotaExceeded {
                client,
                scope,
                limit,
            } => {
                assert_eq!(client, "greedy");
                assert_eq!(scope, QuotaScope::InFlight);
                assert_eq!(limit, 2.0);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }

    let mut polite = ServedClient::connect(&addr, "polite").expect("polite connects");
    for request in requests.iter().take(2) {
        polite
            .submit(&Submission::from_request(request))
            .expect("submit");
    }
    // Quotas are per-client: the polite client's submissions are both
    // admitted even though the greedy client is pinned at its cap.
    let (serve, wire) = polite.stats().expect("stats round trip");
    assert_eq!(serve.submitted, 4, "2 greedy + 2 polite admitted");
    assert_eq!(wire.quota_rejected, 3, "exactly the greedy overflow");
    assert_eq!(wire.connections_active, 2);

    drop(greedy);
    drop(polite);
    daemon.shutdown();
}

/// Broken QASM is refused as `BadRequest` carrying the 1-based line of
/// the parse failure across the wire, and the connection stays usable.
#[test]
fn malformed_qasm_is_refused_with_its_source_line() {
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(1)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let mut client =
        ServedClient::connect(daemon.local_addr().to_string(), "tester").expect("connects");

    let broken = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nfrobnicate q[0];\n";
    let submission = Submission::qasm("broken", broken, "paper", Design::AdaptBuf);
    client.submit(&submission).expect("submit");
    let reply = client.recv_reply().expect("refusal arrives");
    match reply.outcome.expect_err("broken QASM is refused") {
        WireError::BadRequest { line, message } => {
            assert_eq!(line, Some(4), "the offending statement's line");
            assert!(!message.is_empty());
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The refusal is per-request, not per-connection: a good submission
    // on the same socket still completes.
    let good = &wire_requests()[0];
    client
        .submit(&Submission::from_request(good))
        .expect("submit");
    let reply = client.recv_reply().expect("result arrives");
    assert!(reply.outcome.is_ok(), "connection survives a bad request");
    client.bye().expect("clean goodbye");

    let wire = daemon.shutdown().daemon;
    assert_eq!(wire.bad_requests, 1);
    assert_eq!(wire.protocol_errors, 0);
}

/// A submission the static analyzer can prove will never execute on its
/// target point is refused before it costs queue space, as a typed
/// `Rejected` carrying the structured diagnostics — and the refusal is
/// per-request: the connection stays usable.
#[test]
fn statically_infeasible_submission_is_rejected_with_diagnostics() {
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(1)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let mut client =
        ServedClient::connect(daemon.local_addr().to_string(), "prover").expect("connects");

    // 40 data qubits can never fit the paper machine's 32: DQC-E001.
    let wide = dqc::workloads::ghz_chain(40);
    let submission = Submission::qasm(
        "ghz-40",
        dqc::circuit::to_qasm(&wide),
        "paper",
        Design::AdaptBuf,
    );
    client.submit(&submission).expect("submit");
    let reply = client.recv_reply().expect("refusal arrives");
    let error = reply.outcome.expect_err("infeasible submit is refused");
    assert!(
        !error.is_backpressure(),
        "a static proof of infeasibility is never retryable"
    );
    match error {
        WireError::Rejected { point, diagnostics } => {
            assert_eq!(point, "paper");
            assert_eq!(diagnostics.len(), 1);
            assert_eq!(diagnostics[0].code, "DQC-E001");
            assert!(diagnostics[0].is_error());
            // The diagnostics crossed the wire structurally, not as a
            // flattened string: they re-serialize losslessly.
            let json = diagnostics[0].to_json();
            assert_eq!(
                dqc::types::Diagnostic::from_json(&json).unwrap(),
                diagnostics[0]
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // The same circuit against nothing wrong still serves fine.
    let good = &wire_requests()[0];
    client
        .submit(&Submission::from_request(good))
        .expect("submit");
    let reply = client.recv_reply().expect("result arrives");
    assert!(reply.outcome.is_ok(), "connection survives a rejection");
    client.bye().expect("clean goodbye");

    let wire = daemon.shutdown().daemon;
    assert_eq!(wire.bad_requests, 1, "rejections count as bad requests");
    assert_eq!(wire.protocol_errors, 0);
}

/// A full shard queue surfaces over the wire as the same typed
/// `Overloaded` the in-process API raises, marked retryable.
#[test]
fn full_queue_is_reported_as_overloaded() {
    let daemon = ServedBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(0)
        .queue_capacity(2)
        .bind("127.0.0.1:0")
        .expect("daemon binds");
    let mut client =
        ServedClient::connect(daemon.local_addr().to_string(), "flood").expect("connects");

    let requests = wire_requests();
    for request in requests.iter().take(3) {
        client
            .submit(&Submission::from_request(request))
            .expect("submit");
    }
    let reply = client.recv_reply().expect("refusal arrives");
    let error = reply.outcome.expect_err("third submit overflows the queue");
    assert!(error.is_backpressure());
    match error {
        WireError::Overloaded { point, capacity } => {
            assert_eq!(point, "paper");
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    drop(client);
    daemon.shutdown();
}
