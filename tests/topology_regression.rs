//! Topology-layer guarantees, tested end to end through the facade:
//!
//! 1. **Default regression** — an explicit all-to-all topology (with
//!    inherited link parameters) is bit-for-bit identical to the default
//!    (no topology), for every design, across `Experiment` and `Sweep`.
//! 2. **Routing math** — the Werner swap-composition law used by the
//!    executor matches a direct density-matrix simulation of the swap
//!    protocol for 2- and 3-hop chains.
//! 3. **Route selection** — shortest-path ties resolve deterministically.

use dqc::workloads::PaperBenchmark;
use dqc::{Design, Experiment, NetworkTopology, RoutingTable, Sweep, SystemConfig};
use dqc_types::NodeId;

#[test]
fn all_to_all_topology_reports_are_bit_for_bit_default() {
    let baseline = SystemConfig::paper_two_node_32();
    let explicit = baseline.with_topology(NetworkTopology::all_to_all(2));
    for bench in [
        PaperBenchmark::Tlim32,
        PaperBenchmark::QaoaR8_32,
        PaperBenchmark::Qft32,
    ] {
        let circuit = bench.circuit();
        for design in Design::ALL {
            let a = Experiment::new(&circuit, &baseline)
                .unwrap()
                .design(design)
                .runs(6)
                .base_seed(2025)
                .run()
                .unwrap();
            let b = Experiment::new(&circuit, &explicit)
                .unwrap()
                .design(design)
                .runs(6)
                .base_seed(2025)
                .run()
                .unwrap();
            assert_eq!(a, b, "{bench}/{design}: topology default must be invisible");
        }
    }
}

#[test]
fn all_to_all_topology_sweeps_are_bit_for_bit_default() {
    let grid = |config: SystemConfig| {
        Sweep::new()
            .benchmarks([PaperBenchmark::Tlim32, PaperBenchmark::QaoaR4_32])
            .config("paper", config)
            .designs(&Design::ALL)
            .runs(3)
            .base_seed(11)
            .run()
            .unwrap()
    };
    let baseline = grid(SystemConfig::paper_two_node_32());
    let explicit =
        grid(SystemConfig::paper_two_node_32().with_topology(NetworkTopology::all_to_all(2)));
    assert_eq!(baseline.cells.len(), explicit.cells.len());
    for (a, b) in baseline.cells.iter().zip(&explicit.cells) {
        assert_eq!(a.report, b.report, "{}/{}", a.circuit, a.design);
    }
}

#[test]
fn four_node_all_to_all_matches_implicit_complete_graph() {
    let circuit = dqc::workloads::ising_2d(8, 4, 3, dqc::workloads::TlimParams::default());
    let mut baseline = SystemConfig::paper_two_node_64();
    baseline.num_nodes = 4;
    baseline.data_qubits_per_node = 8;
    let explicit = baseline.with_topology(NetworkTopology::all_to_all(4));
    for design in [Design::Original, Design::AsyncBuf, Design::AdaptBuf] {
        let a = Experiment::new(&circuit, &baseline)
            .unwrap()
            .design(design)
            .runs(4)
            .run()
            .unwrap();
        let b = Experiment::new(&circuit, &explicit)
            .unwrap()
            .design(design)
            .runs(4)
            .run()
            .unwrap();
        assert_eq!(a, b, "{design}: 4-node all-to-all must match default");
    }
}

#[test]
fn swap_chain_law_matches_density_matrix_for_two_hops() {
    for f1 in [0.25, 0.7, 0.9, 0.99, 1.0] {
        for f2 in [0.3, 0.8, 0.95, 1.0] {
            let routed = dqc::entanglement::swap_chain_fidelity(&[f1, f2]);
            let density = dqc::sim::entanglement_swap_chain_fidelity(&[f1, f2]);
            assert!(
                (routed - density).abs() < 1e-9,
                "2-hop ({f1}, {f2}): routing {routed} vs density {density}"
            );
        }
    }
}

#[test]
fn swap_chain_law_matches_density_matrix_for_three_hops() {
    for fs in [
        [0.99, 0.99, 0.99],
        [0.97, 0.9, 0.85],
        [0.6, 0.95, 0.8],
        [0.25, 0.99, 0.99],
    ] {
        let routed = dqc::entanglement::swap_chain_fidelity(&fs);
        let density = dqc::sim::entanglement_swap_chain_fidelity(&fs);
        assert!(
            (routed - density).abs() < 1e-9,
            "3-hop {fs:?}: routing {routed} vs density {density}"
        );
    }
}

#[test]
fn route_selection_is_deterministic_under_equal_cost_ties() {
    // ring(6): 0 → 3 has two 3-hop routes; the tie must always break the
    // same way (via ascending BFS neighbor order), and rebuilt tables
    // must agree exactly.
    let topo = NetworkTopology::ring(6);
    let table = RoutingTable::new(&topo);
    let route = table.route(NodeId::new(0), NodeId::new(3)).unwrap();
    let via: Vec<u16> = route.nodes().iter().map(|n| n.index()).collect();
    assert_eq!(via, vec![0, 1, 2, 3]);
    for _ in 0..5 {
        assert_eq!(RoutingTable::new(&topo), table);
    }
    // And a compiled circuit over a tied topology reproduces itself.
    let circuit = PaperBenchmark::QaoaR4_32.circuit();
    let mut config = SystemConfig::paper_two_node_32();
    config.data_qubits_per_node = 8;
    let config = config.with_topology(NetworkTopology::ring(4));
    let run = || {
        dqc::CompiledCircuit::compile(&circuit, &config)
            .unwrap()
            .run(Design::AsyncBuf, 3)
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn remote_heavy_fidelity_rises_with_connectivity() {
    // The acceptance ordering, at the facade level: chain < grid <
    // all-to-all end-to-end fidelity on the remote-heavy benchmark.
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let mut base = SystemConfig::paper_two_node_32();
    base.data_qubits_per_node = 8;
    let fidelity = |topology: NetworkTopology| {
        Experiment::new(&circuit, &base.with_topology(topology))
            .unwrap()
            .design(Design::AsyncBuf)
            .runs(5)
            .base_seed(2025)
            .run()
            .unwrap()
            .mean_fidelity
    };
    let chain = fidelity(NetworkTopology::chain(4));
    let grid = fidelity(NetworkTopology::grid2d(2, 2));
    let full = fidelity(NetworkTopology::all_to_all(4));
    assert!(chain < grid, "chain {chain} < grid {grid}");
    assert!(grid < full, "grid {grid} < all-to-all {full}");
}
