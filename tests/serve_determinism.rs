//! The serving layer's central correctness contract: **concurrency never
//! changes results**. The same request produces byte-identical
//! [`ExecutionReport`]s whether it is evaluated directly in-process or
//! served by a [`Server`] — at any worker count, under any submission
//! order, across any batch boundaries. Also pins the collision-freedom
//! of the stable fingerprints the serve cache keys by, over the full
//! workload suite and a grid of hardware points.

use dqc::workloads::PaperBenchmark;
use dqc::{
    AutoscalePolicy, Backend, CompiledCircuit, Design, EvalRequest, ExecutionReport, Experiment,
    ServeBuilder, SystemConfig, TopologyFamily,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The fixed request set: the serving portfolio × two designs × two seed
/// bases, two runs each — 24 distinct requests.
fn request_set() -> Vec<EvalRequest> {
    let portfolio = dqc_bench::serve_portfolio();
    let mut requests = Vec::new();
    for (label, circuit) in &portfolio {
        for design in [Design::AdaptBuf, Design::AsyncBuf] {
            for base_seed in [11u64, 5000] {
                requests.push(
                    EvalRequest::new(label.clone(), Arc::clone(circuit), "paper", design)
                        .runs(2)
                        .base_seed(base_seed),
                );
            }
        }
    }
    requests
}

/// Ground truth: every request evaluated directly through the engine,
/// sharing one compilation per circuit exactly as any caller would.
fn direct_reports(requests: &[EvalRequest]) -> Vec<Vec<ExecutionReport>> {
    let config = SystemConfig::paper_two_node_32();
    let mut compiled = HashMap::new();
    requests
        .iter()
        .map(|request| {
            let shared = compiled
                .entry(request.circuit.fingerprint())
                .or_insert_with(|| {
                    Experiment::new(&request.circuit, &config)
                        .expect("portfolio circuits compile")
                        .compiled()
                        .clone()
                });
            Experiment::with_compiled(Arc::clone(shared))
                .design(request.design)
                .runs(request.runs)
                .base_seed(request.base_seed)
                .reports()
                .expect("portfolio circuits evaluate")
        })
        .collect()
}

#[test]
fn shuffled_concurrent_serving_is_byte_identical_to_direct_evaluation() {
    let requests = request_set();
    let expected = direct_reports(&requests);

    for (workers, shuffle_seed) in [(1usize, 7u64), (2, 8), (4, 9)] {
        // A different submission order per worker count: determinism must
        // hold across *both* axes at once.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));

        let (server, responses) = ServeBuilder::new()
            .hardware_point("paper", SystemConfig::paper_two_node_32())
            .workers_per_shard(workers)
            .queue_capacity(requests.len())
            .spawn()
            .unwrap();
        let mut by_id = HashMap::new();
        for &request_idx in &order {
            let id = server.submit(requests[request_idx].clone()).unwrap();
            by_id.insert(id, request_idx);
        }
        for _ in 0..requests.len() {
            let response = responses.recv().expect("server streams every response");
            let request_idx = by_id.remove(&response.id).expect("ids are unique");
            let output = response.outcome.unwrap_or_else(|e| {
                panic!("request {request_idx} failed with {workers} workers: {e}")
            });
            assert_eq!(
                output.reports, expected[request_idx],
                "request {request_idx} ({}) diverged with {workers} workers",
                requests[request_idx].circuit_label
            );
        }
        let stats = server.shutdown().serve;
        assert_eq!(stats.served, requests.len() as u64);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, requests.len() as u64);
        // Each of the 6 distinct circuits must miss cold at least once;
        // concurrent workers may race a few extra misses, never fewer.
        assert!(
            stats.cache_misses >= 6,
            "6 distinct circuits cannot miss fewer than 6 times (got {})",
            stats.cache_misses
        );
        assert!(
            stats.cache_hits > 0,
            "repeated circuits must hit the warm cache"
        );
    }
}

#[test]
fn replay_fusion_is_byte_identical_to_unfused_serving() {
    // Duplicate-heavy traffic — 3 of every 4 requests are the *same*
    // evaluation — is exactly what cross-request replay fusion coalesces.
    // Fused or not, at any worker count, under shuffled submission, the
    // bytes must match direct evaluation (and therefore each other).
    let requests = dqc_bench::skewed_requests(24, 2, 41, "paper", 4);
    let expected = direct_reports(&requests);

    for (workers, shuffle_seed) in [(1usize, 21u64), (2, 22), (4, 23)] {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));

        for fusion in [true, false] {
            let (server, responses) = ServeBuilder::new()
                .hardware_point("paper", SystemConfig::paper_two_node_32())
                .workers_per_shard(workers)
                .queue_capacity(requests.len())
                .fusion(fusion)
                .spawn()
                .unwrap();
            let mut by_id = HashMap::new();
            for &request_idx in &order {
                let id = server.submit(requests[request_idx].clone()).unwrap();
                by_id.insert(id, request_idx);
            }
            for _ in 0..requests.len() {
                let response = responses.recv().expect("server streams every response");
                let request_idx = by_id.remove(&response.id).expect("ids are unique");
                let output = response.outcome.unwrap_or_else(|e| {
                    panic!("request {request_idx} failed (fusion={fusion}): {e}")
                });
                assert_eq!(
                    output.reports, expected[request_idx],
                    "request {request_idx} diverged with {workers} workers, fusion={fusion}"
                );
            }
            let stats = server.shutdown().serve;
            assert_eq!(stats.served, requests.len() as u64);
            if !fusion {
                assert_eq!(stats.fused_requests, 0, "fusion off must never fuse");
                assert_eq!(stats.fused_replays_saved, 0);
            }
        }
    }
}

#[test]
fn autoscaled_serving_is_byte_identical_and_conserves_the_worker_budget() {
    // Two identical hardware points, all traffic on one of them: the
    // autoscaler may shuffle the worker budget toward the hot shard at
    // any moment mid-run, and the bytes must not care.
    let requests = request_set();
    let expected = direct_reports(&requests);

    let (server, responses) = ServeBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .hardware_point("spare", SystemConfig::paper_two_node_32())
        .worker_budget(3)
        .autoscale(AutoscalePolicy {
            tick_ms: 2,
            ..AutoscalePolicy::default()
        })
        .queue_capacity(requests.len())
        .spawn()
        .unwrap();
    let mut by_id = HashMap::new();
    for (request_idx, request) in requests.iter().enumerate() {
        let id = server.submit(request.clone()).unwrap();
        by_id.insert(id, request_idx);
    }
    for _ in 0..requests.len() {
        let response = responses.recv().expect("server streams every response");
        let request_idx = by_id.remove(&response.id).expect("ids are unique");
        let output = response
            .outcome
            .unwrap_or_else(|e| panic!("request {request_idx} failed under autoscaling: {e}"));
        assert_eq!(
            output.reports, expected[request_idx],
            "request {request_idx} diverged under autoscaling"
        );
    }
    let report = server.shutdown();
    assert_eq!(report.serve.served, requests.len() as u64);
    assert!(report.serve.autoscale_ticks > 0, "the controller ticked");
    let points: Vec<&str> = report.placement.iter().map(|p| p.point.as_str()).collect();
    assert_eq!(points, ["paper", "spare"], "registration order");
    let total: usize = report.placement.iter().map(|p| p.workers).sum();
    assert_eq!(total, 3, "rebalancing conserves the worker budget");
    for placement in &report.placement {
        assert!(placement.workers >= 1, "no shard drops below the floor");
    }
}

#[test]
fn observability_recording_never_changes_served_bytes() {
    // The tracing layer's contract with this suite: instrumentation is
    // inert by default (no recorder installed — the hot path is one
    // relaxed atomic load), and even with a live recorder capturing
    // every span, the served bytes stay identical to direct evaluation.
    let requests = request_set();
    let expected = direct_reports(&requests);

    let serve_all = |requests: &[EvalRequest]| -> Vec<Vec<ExecutionReport>> {
        let (server, responses) = ServeBuilder::new()
            .hardware_point("paper", SystemConfig::paper_two_node_32())
            .workers_per_shard(2)
            .queue_capacity(requests.len())
            .spawn()
            .unwrap();
        let mut by_id = HashMap::new();
        for (request_idx, request) in requests.iter().enumerate() {
            by_id.insert(server.submit(request.clone()).unwrap(), request_idx);
        }
        let mut outputs = vec![Vec::new(); requests.len()];
        for _ in 0..requests.len() {
            let response = responses.recv().expect("server streams every response");
            let request_idx = by_id.remove(&response.id).expect("ids are unique");
            outputs[request_idx] = response.outcome.expect("request succeeds").reports;
        }
        server.shutdown();
        outputs
    };

    // Pass 1: the default — nothing installed, nothing recorded.
    assert!(
        !dqc::obs::recording(),
        "no recorder is installed by default"
    );
    assert_eq!(serve_all(&requests), expected, "uninstrumented pass");

    // Pass 2: a ring recorder capturing every span. Same bytes.
    let ring = Arc::new(dqc::obs::RingRecorder::new(262_144));
    let session = dqc::obs::install(ring.clone(), Arc::new(dqc::obs::MonotonicClock::new()));
    assert_eq!(serve_all(&requests), expected, "recorded pass");
    drop(session);
    assert!(
        !dqc::obs::recording(),
        "dropping the session disarms recording"
    );

    // The recorder was genuinely live: every request's span tree landed.
    let spans = ring.spans();
    let roots = spans.iter().filter(|s| s.parent.is_none()).count();
    assert!(
        roots >= requests.len(),
        "expected a root span per served request, got {roots} for {}",
        requests.len()
    );
    assert!(
        spans.iter().any(|s| s.name == "compile"),
        "compile spans present"
    );
    assert!(
        spans.iter().any(|s| s.name == "exec.replay"),
        "replay spans present"
    );
}

#[test]
fn repeated_serving_of_one_request_is_self_consistent() {
    // The same request submitted many times — interleaved with other
    // traffic — always returns the same bytes (cold or warm cache).
    let requests = request_set();
    let probe = requests[3].clone();
    let (server, responses) = ServeBuilder::new()
        .hardware_point("paper", SystemConfig::paper_two_node_32())
        .workers_per_shard(3)
        .queue_capacity(2 * requests.len())
        .spawn()
        .unwrap();
    let mut probe_ids = HashSet::new();
    for request in &requests {
        probe_ids.insert(server.submit(probe.clone()).unwrap());
        server.submit(request.clone()).unwrap();
    }
    let mut probe_outputs = Vec::new();
    for _ in 0..2 * requests.len() {
        let response = responses.recv().unwrap();
        if probe_ids.contains(&response.id) {
            probe_outputs.push(response.outcome.unwrap().reports);
        }
    }
    assert_eq!(probe_outputs.len(), requests.len());
    for output in &probe_outputs[1..] {
        assert_eq!(output, &probe_outputs[0]);
    }
    server.shutdown();
}

#[test]
fn circuit_fingerprints_are_collision_free_across_the_workload_suite() {
    // Every circuit the repository's benchmarks and serving portfolio
    // exercise, plus size ladders of the generators: all fingerprints
    // must be pairwise distinct (and distinct from each other's).
    let mut circuits = Vec::new();
    for bench in PaperBenchmark::ALL {
        circuits.push((bench.to_string(), bench.circuit()));
    }
    for (label, circuit) in dqc_bench::serve_portfolio() {
        circuits.push((format!("portfolio/{label}"), (*circuit).clone()));
    }
    for n in 2..=16 {
        circuits.push((format!("qft-{n}"), dqc::workloads::qft(n)));
        circuits.push((format!("ghz-chain-{n}"), dqc::workloads::ghz_chain(n)));
        circuits.push((format!("ghz-tree-{n}"), dqc::workloads::ghz_tree(n)));
    }
    let mut seen: HashMap<u64, &str> = HashMap::new();
    for (label, circuit) in &circuits {
        if let Some(previous) = seen.insert(circuit.fingerprint(), label) {
            // Identical circuits are allowed to collide (ghz chain/tree
            // agree at tiny sizes); structurally different ones are not.
            let twin = circuits
                .iter()
                .find(|(l, _)| l == previous)
                .map(|(_, c)| c)
                .unwrap();
            assert_eq!(
                twin, circuit,
                "`{previous}` and `{label}` collide without being equal"
            );
        }
    }
}

#[test]
fn config_fingerprints_separate_hardware_points() {
    // A grid of hardware points around the paper configuration — every
    // knob the design space sweeps — must fingerprint distinctly.
    let base = SystemConfig::paper_two_node_32();
    let mut configs = vec![base.clone(), SystemConfig::paper_two_node_64()];
    for n in 1..=20 {
        configs.push(base.with_comm_and_buffer(n));
    }
    for f in [0.9, 0.95, 0.97, 0.99, 0.995] {
        configs.push(base.with_epr_fidelity(f));
    }
    for family in [
        TopologyFamily::Chain { nodes: 4 },
        TopologyFamily::Ring { nodes: 4 },
        TopologyFamily::Star { nodes: 4 },
        TopologyFamily::AllToAll { nodes: 4 },
    ] {
        configs.push(base.with_topology(family.build()));
    }
    for backend in Backend::ALL {
        // `with_backend(Analytic)` deliberately revisits the base point.
        configs.push(base.clone().with_backend(backend));
    }
    let mut seen: HashMap<u64, &SystemConfig> = HashMap::new();
    for config in &configs {
        if let Some(previous) = seen.insert(config.fingerprint(), config) {
            // The grid deliberately revisits the base point (e.g.
            // `with_epr_fidelity(0.99)` is the paper default): equal
            // configurations must agree; unequal ones must not collide.
            assert_eq!(
                previous, config,
                "hardware-point fingerprint collision between distinct configs"
            );
        }
        assert_eq!(config.fingerprint(), config.clone().fingerprint());
    }
}

#[test]
fn backends_never_share_a_cache_entry() {
    // The backend is folded into the configuration fingerprint, so the
    // serve cache key for the same circuit on the same hardware point
    // differs across backends — a stabilizer compilation can never be
    // handed to a density request or vice versa.
    let circuit = Arc::new(dqc::workloads::ghz_chain(32));
    let base = SystemConfig::paper_two_node_32();
    let keys: Vec<u64> = Backend::ALL
        .into_iter()
        .map(|b| CompiledCircuit::cache_key(&circuit, &base.clone().with_backend(b)))
        .collect();
    for (i, a) in keys.iter().enumerate() {
        for b in &keys[i + 1..] {
            assert_ne!(a, b, "two backends share a cache key");
        }
    }

    // End to end: one server, one shard per backend, the same circuit.
    // Each shard compiles its own entry (one cold miss each), and on a
    // Clifford circuit every engine agrees bit-for-bit.
    let (server, responses) = ServeBuilder::new()
        .hardware_point("analytic", base.clone())
        .hardware_point("stabilizer", base.clone().with_backend(Backend::Stabilizer))
        .hardware_point("auto", base.clone().with_backend(Backend::Auto))
        .workers_per_shard(1)
        .spawn()
        .unwrap();
    let mut point_of = HashMap::new();
    for point in ["analytic", "stabilizer", "auto"] {
        for base_seed in [3u64, 90] {
            let id = server
                .submit(
                    EvalRequest::new(
                        "ghz-chain-32",
                        Arc::clone(&circuit),
                        point,
                        Design::AsyncBuf,
                    )
                    .runs(2)
                    .base_seed(base_seed),
                )
                .unwrap();
            point_of.insert(id, (point, base_seed));
        }
    }
    let mut reports: HashMap<(&str, u64), Vec<ExecutionReport>> = HashMap::new();
    for _ in 0..6 {
        let response = responses.recv().unwrap();
        let key = point_of.remove(&response.id).unwrap();
        reports.insert(key, response.outcome.unwrap().reports);
    }
    for base_seed in [3u64, 90] {
        let analytic = &reports[&("analytic", base_seed)];
        assert_eq!(analytic, &reports[&("stabilizer", base_seed)]);
        assert_eq!(analytic, &reports[&("auto", base_seed)]);
    }
    let stats = server.shutdown().serve;
    assert_eq!(stats.served, 6);
    assert_eq!(
        stats.cache_misses, 3,
        "one cold compilation per backend shard"
    );
    assert_eq!(stats.cache_hits, 3);
}
