//! Round-trip and tolerance coverage for the results pipeline: real
//! engine output serialized to JSON text, parsed back, and compared —
//! plus the `repro diff` edge cases the golden gate relies on.

use dqc::types::json::{self, Json};
use dqc::workloads::PaperBenchmark;
use dqc::{AveragedReport, Design, ExecutionReport, Experiment, Sweep, SweepResult, SystemConfig};

fn experiment(design: Design) -> Experiment {
    Experiment::new(
        &PaperBenchmark::Tlim32.circuit(),
        &SystemConfig::paper_two_node_32(),
    )
    .unwrap()
    .design(design)
    .base_seed(7)
}

#[test]
fn execution_report_round_trips_identically() {
    // A distributed design (service stats present) and the ideal design
    // (service stats absent) both survive text serialization exactly.
    for design in [Design::AsyncBuf, Design::AdaptBuf, Design::Ideal] {
        let report = experiment(design).run_one(3).unwrap();
        let text = report.to_json().to_pretty_string();
        let back = ExecutionReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report, "{design}");
    }
}

#[test]
fn averaged_report_round_trips_identically() {
    let avg = experiment(Design::SyncBuf).runs(3).run().unwrap();
    let text = avg.to_json().to_compact_string();
    let back = AveragedReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, avg);
}

#[test]
fn sweep_result_round_trips_identically() {
    let result = Sweep::new()
        .benchmark(PaperBenchmark::QaoaR4_32)
        .config("paper", SystemConfig::paper_two_node_32())
        .designs(&[Design::Original, Design::AsyncBuf, Design::Ideal])
        .runs(2)
        .base_seed(11)
        .run()
        .unwrap();
    let text = result.to_json().to_pretty_string();
    let back = SweepResult::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back.compilations, result.compilations);
    assert_eq!(
        back.cells.iter().map(|c| &c.report).collect::<Vec<_>>(),
        result.cells.iter().map(|c| &c.report).collect::<Vec<_>>()
    );
    // Round-tripping is also diff-clean at zero tolerance.
    assert!(json::diff(&result.to_json(), &back.to_json(), 0.0).is_empty());
}

#[test]
fn serialized_reports_never_contain_nan_or_inf() {
    // The writer's contract: whatever the floats are, the document text
    // is valid JSON with no NaN/inf tokens (non-finite maps to null).
    let result = Sweep::new()
        .benchmark(PaperBenchmark::Qft32)
        .config("paper", SystemConfig::paper_two_node_32())
        .designs(&Design::ALL)
        .runs(2)
        .run()
        .unwrap();
    let text = result.to_json().to_pretty_string();
    assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    Json::parse(&text).expect("document parses");

    // And a synthetically poisoned document still serializes validly.
    let poisoned = Json::object([
        ("nan", Json::float(f64::NAN)),
        ("inf", Json::float(f64::INFINITY)),
    ]);
    assert_eq!(poisoned.to_compact_string(), r#"{"nan":null,"inf":null}"#);
}

#[test]
fn diff_tolerance_brackets_a_perturbation() {
    let report = experiment(Design::AsyncBuf).run_one(0).unwrap();
    let a = report.to_json();
    // Perturb one fidelity by 1e-7 (relative).
    let mut b = a.clone();
    if let Json::Object(members) = &mut b {
        for (k, v) in members.iter_mut() {
            if k == "fidelity" {
                let old = v.as_f64().unwrap();
                *v = Json::float(old * (1.0 + 1e-7));
            }
        }
    }
    assert!(json::diff(&a, &b, 1e-6).is_empty(), "inside tolerance");
    let diffs = json::diff(&a, &b, 1e-9);
    assert_eq!(diffs.len(), 1, "outside tolerance");
    assert_eq!(diffs[0].path, "$.fidelity");
}

#[test]
fn diff_zero_tolerance_detects_one_ulp() {
    let a = Json::float(1.0);
    let b = Json::float(1.0 + f64::EPSILON);
    assert!(!json::diff(&a, &b, 0.0).is_empty());
    assert!(json::diff(&a, &a, 0.0).is_empty());
}

#[test]
fn diff_negative_tolerance_behaves_like_zero() {
    // The CLI rejects negative --tol, but the library clamps defensively.
    let a = Json::float(2.0);
    assert!(json::diff(&a, &a, -1.0).is_empty());
    assert!(!json::diff(&a, &Json::float(2.1), -1.0).is_empty());
}

#[test]
fn diff_reports_every_divergent_cell_path() {
    let result = Sweep::new()
        .benchmark(PaperBenchmark::Tlim32)
        .config("paper", SystemConfig::paper_two_node_32())
        .designs(&[Design::Original, Design::Ideal])
        .runs(2)
        .run()
        .unwrap();
    let a = result.to_json();
    let other = Sweep::new()
        .benchmark(PaperBenchmark::Tlim32)
        .config("paper", SystemConfig::paper_two_node_32())
        .designs(&[Design::Original, Design::Ideal])
        .runs(2)
        .base_seed(99)
        .run()
        .unwrap()
        .to_json();
    let diffs = json::diff(&a, &other, 1e-12);
    assert!(!diffs.is_empty(), "different seeds must differ somewhere");
    for d in &diffs {
        assert!(d.path.starts_with("$.cells["), "{}", d.path);
    }
}
