//! QASM interchange is lossless for everything the serving layer ships:
//! `to_qasm → from_qasm` reproduces the exact [`Circuit::fingerprint`]
//! for the full QAOA/QFT/GHZ serve portfolio, so a circuit that travels
//! as OpenQASM text hits the same warm compile-cache entry as the
//! structured original. The structured JSON travel format is pinned to
//! the same contract, and the QASM text itself is a fixed point after
//! one round trip.

use dqc::circuit::{from_qasm, to_qasm, Circuit};

/// The property the serve cache depends on: text round trip preserves
/// the fingerprint, per portfolio circuit.
#[test]
fn qasm_round_trip_preserves_fingerprint_for_serve_portfolio() {
    let portfolio = dqc_bench::serve_portfolio();
    assert!(!portfolio.is_empty(), "portfolio must cover real workloads");
    for (label, circuit) in &portfolio {
        let text = to_qasm(circuit);
        let parsed = from_qasm(&text)
            .unwrap_or_else(|e| panic!("{label}: emitted QASM failed to parse: {e}"));
        assert_eq!(
            parsed.fingerprint(),
            circuit.fingerprint(),
            "{label}: QASM round trip changed the fingerprint",
        );
        assert_eq!(
            parsed.num_qubits(),
            circuit.num_qubits(),
            "{label}: QASM round trip changed the qubit count",
        );
        assert_eq!(
            parsed.operations().len(),
            circuit.operations().len(),
            "{label}: QASM round trip changed the operation count",
        );
    }
}

/// The emitted text is already canonical: emitting the parsed circuit
/// again produces byte-identical QASM, so repeated hops cannot drift.
#[test]
fn qasm_emission_is_a_fixed_point() {
    for (label, circuit) in &dqc_bench::serve_portfolio() {
        let once = to_qasm(circuit);
        let twice = to_qasm(&from_qasm(&once).expect("emitted QASM parses"));
        assert_eq!(once, twice, "{label}: QASM text is not stable");
    }
}

/// The structured JSON travel format keeps the same promise, so both
/// wire formats land on one cache key.
#[test]
fn json_round_trip_preserves_fingerprint_for_serve_portfolio() {
    for (label, circuit) in &dqc_bench::serve_portfolio() {
        let back = Circuit::from_json(&circuit.to_json())
            .unwrap_or_else(|e| panic!("{label}: circuit JSON failed to parse: {e}"));
        assert_eq!(
            back.fingerprint(),
            circuit.fingerprint(),
            "{label}: JSON round trip changed the fingerprint",
        );
    }
}
