//! Cross-backend differential harness: every compiled circuit must mean
//! the same thing on every engine that can execute it.
//!
//! The backend contract has two tiers, and this suite pins both:
//!
//! - **exact** — the stabilizer fast path replays the analytic engine's
//!   schedule and RNG streams, so stabilizer-eligible circuits must agree
//!   **bit for bit** with the analytic reference (and `auto` must equal
//!   whatever engine it selects);
//! - **numeric** — the density backend re-derives every remote-gate
//!   fidelity factor from the dense teleportation gadget instead of the
//!   analytic affine law; the law is exact in the Werner parameter, so at
//!   density-feasible widths (≤ 8 data qubits) the two must agree within
//!   `1e-9` while timing stays identical.
//!
//! The suite replays the full serving portfolio plus a Clifford-only
//! suite through every eligible backend pair, across shuffled seed orders
//! and multi-run matrices, and closes with seeded property-style loops
//! pinning the compile-time tableau certification against the dense
//! oracle.

use dqc::circuit::Circuit;
use dqc::core::DENSITY_MAX_QUBITS;
use dqc::sim::Statevector;
use dqc::workloads::{clifford_blocks, ghz_chain, ghz_tree, qft, random_clifford};
use dqc::{Backend, CompiledCircuit, Design, DqcError, ExecutionReport, SystemConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Tolerance of the numeric (density vs analytic) tier.
const NUMERIC_TOL: f64 = 1e-9;

/// The designs the matrices replay: the bare baseline, the buffered
/// event-driven path, and the adaptive path (where the stabilizer engine
/// must *decline* and fall back without changing results).
const DESIGNS: [Design; 3] = [Design::Original, Design::AsyncBuf, Design::AdaptBuf];

fn is_clifford(circuit: &Circuit) -> bool {
    circuit
        .operations()
        .iter()
        .all(|op| op.gate().is_clifford())
}

/// Every backend that can legally execute `circuit`: `analytic` and
/// `auto` always, `stabilizer` for Clifford-only circuits, `density`
/// within its width budget.
fn eligible_backends(circuit: &Circuit) -> Vec<Backend> {
    let mut backends = vec![Backend::Analytic, Backend::Auto];
    if is_clifford(circuit) {
        backends.push(Backend::Stabilizer);
    }
    if circuit.num_qubits() <= DENSITY_MAX_QUBITS {
        backends.push(Backend::Density);
    }
    backends
}

/// Compares two reports of the same (circuit, design, seed) cell under
/// the tier the backend pair promises: exact unless density is involved,
/// in which case timing stays exact and fidelities agree numerically.
fn assert_pair_agrees(
    label: &str,
    design: Design,
    seed: u64,
    (ba, a): (Backend, &ExecutionReport),
    (bb, b): (Backend, &ExecutionReport),
) {
    let context = format!("{label} / {design} / seed {seed}: {ba} vs {bb}");
    if ba == Backend::Density || bb == Backend::Density {
        assert_eq!(a.makespan, b.makespan, "{context}");
        assert_eq!(a.remote_gates, b.remote_gates, "{context}");
        assert_eq!(a.service_stats, b.service_stats, "{context}");
        assert_eq!(a.mean_link_wait, b.mean_link_wait, "{context}");
        for (field, x, y) in [
            ("fidelity", a.fidelity, b.fidelity),
            ("local_fidelity", a.local_fidelity, b.local_fidelity),
            ("remote_fidelity", a.remote_fidelity, b.remote_fidelity),
            ("idle_fidelity", a.idle_fidelity, b.idle_fidelity),
        ] {
            assert!(
                (x.value() - y.value()).abs() <= NUMERIC_TOL,
                "{context}: {field} {} vs {}",
                x.value(),
                y.value()
            );
        }
    } else {
        assert_eq!(a, b, "{context}");
    }
}

/// Runs `circuit` through every eligible backend over a shuffled seed
/// order and asserts pairwise agreement on every cell. Shuffling the
/// replay order per backend proves runs are independent: the report of
/// seed `s` cannot depend on which seeds were evaluated before it.
fn differential_matrix(label: &str, circuit: &Circuit, config: &SystemConfig, shuffle: u64) {
    let backends = eligible_backends(circuit);
    let compiled: Vec<(Backend, CompiledCircuit)> = backends
        .iter()
        .map(|&backend| {
            let compiled = CompiledCircuit::compile(circuit, &config.clone().with_backend(backend))
                .unwrap_or_else(|e| panic!("{label}: {backend} must compile: {e}"));
            (backend, compiled)
        })
        .collect();
    let seeds: Vec<u64> = vec![0, 7, 41, 2025];
    for design in DESIGNS {
        // Each backend replays the seed matrix in a different order.
        let per_backend: Vec<(Backend, Vec<(u64, ExecutionReport)>)> = compiled
            .iter()
            .enumerate()
            .map(|(i, (backend, compiled))| {
                let mut order = seeds.clone();
                order.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle ^ ((i as u64) << 8)));
                let mut cells: Vec<(u64, ExecutionReport)> = order
                    .into_iter()
                    .map(|seed| {
                        let report = compiled
                            .run(design, seed)
                            .unwrap_or_else(|e| panic!("{label} / {backend}: {e}"));
                        (seed, report)
                    })
                    .collect();
                cells.sort_by_key(|(seed, _)| *seed);
                (*backend, cells)
            })
            .collect();
        for (i, (ba, cells_a)) in per_backend.iter().enumerate() {
            for (bb, cells_b) in &per_backend[i + 1..] {
                for ((seed, a), (_, b)) in cells_a.iter().zip(cells_b) {
                    assert_pair_agrees(label, design, *seed, (*ba, a), (*bb, b));
                }
            }
        }
    }
}

/// The Clifford-only suite: wide circuits where the stabilizer fast path
/// is eligible (and, at 8 qubits, the density oracle joins in).
fn clifford_suite() -> Vec<(String, Circuit, SystemConfig)> {
    let paper = SystemConfig::paper_two_node_32();
    let mut small = paper.clone();
    small.data_qubits_per_node = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(0xC11F);
    vec![
        ("GHZ-chain-32".into(), ghz_chain(32), paper.clone()),
        ("GHZ-tree-32".into(), ghz_tree(32), paper.clone()),
        (
            "Clifford-32".into(),
            random_clifford(32, 300, 0.0, &mut rng),
            paper.clone(),
        ),
        (
            "Clifford-blocks-32".into(),
            clifford_blocks(32, 150, 4, &mut rng),
            paper,
        ),
        (
            "Clifford-8".into(),
            random_clifford(8, 120, 0.0, &mut rng),
            small.clone(),
        ),
        ("GHZ-chain-8".into(), ghz_chain(8), small.clone()),
        ("QFT-8".into(), qft(8), small),
    ]
}

#[test]
fn serve_portfolio_agrees_across_eligible_backends() {
    // The exact traffic mix the serving layer is benchmarked on: QAOA
    // and QFT stay analytic-only (non-Clifford, too wide for density),
    // the GHZ circuits additionally exercise the stabilizer path.
    let config = SystemConfig::paper_two_node_32();
    for (label, circuit) in dqc_bench::serve_portfolio() {
        differential_matrix(&label, &circuit, &config, 0x9087 ^ circuit.fingerprint());
    }
}

#[test]
fn clifford_suite_agrees_across_every_backend_pair() {
    for (i, (label, circuit, config)) in clifford_suite().into_iter().enumerate() {
        differential_matrix(&label, &circuit, &config, 0xC1_0000 + i as u64);
    }
}

#[test]
fn multi_run_matrices_agree_across_backends() {
    // The Experiment path (compile once, replay a contiguous seed range)
    // through every backend: same run counts, same base seeds, same
    // reports — including a window that straddles seed 0.
    let circuit = ghz_chain(32);
    let config = SystemConfig::paper_two_node_32();
    for backend in [Backend::Stabilizer, Backend::Auto] {
        let reference = dqc::Experiment::new(&circuit, &config).unwrap();
        let subject =
            dqc::Experiment::new(&circuit, &config.clone().with_backend(backend)).unwrap();
        for (runs, base_seed) in [(1usize, 5u64), (3, 0), (5, u64::MAX - 2)] {
            let expected = reference
                .clone()
                .design(Design::AsyncBuf)
                .runs(runs)
                .base_seed(base_seed)
                .reports()
                .unwrap();
            let got = subject
                .clone()
                .design(Design::AsyncBuf)
                .runs(runs)
                .base_seed(base_seed)
                .reports()
                .unwrap();
            assert_eq!(expected, got, "{backend}, runs {runs}, base {base_seed}");
        }
    }
}

#[test]
fn explicit_stabilizer_is_rejected_on_non_clifford_portfolio_circuits() {
    let config = SystemConfig::paper_two_node_32().with_backend(Backend::Stabilizer);
    for (label, circuit) in dqc_bench::serve_portfolio() {
        if is_clifford(&circuit) {
            continue;
        }
        let err = CompiledCircuit::compile(&circuit, &config)
            .expect_err("non-Clifford circuits must not compile for the stabilizer engine");
        match err {
            DqcError::BackendUnsupported { backend, reason } => {
                assert_eq!(backend, "stabilizer", "{label}");
                assert!(reason.contains("non-Clifford"), "{label}: {reason}");
            }
            other => panic!("{label}: expected BackendUnsupported, got {other}"),
        }
    }
}

#[test]
fn density_is_rejected_beyond_its_width_budget() {
    let config = SystemConfig::paper_two_node_32().with_backend(Backend::Density);
    let err = CompiledCircuit::compile(&ghz_chain(32), &config)
        .expect_err("32 qubits exceed the density budget");
    assert!(matches!(err, DqcError::BackendUnsupported { backend, .. } if backend == "density"));
}

// ----------------------------------------------------- property-style

/// Seeded property loop: for random Clifford circuits, the compile-time
/// tableau certification (`stabilizer_outcomes`) must match the dense
/// oracle — every certified-deterministic qubit measures its certified
/// value with probability 1 in the statevector, and every uncertified
/// qubit is exactly unbiased (stabilizer states admit no third case).
#[test]
fn random_clifford_outcomes_match_the_dense_oracle() {
    let mut config = SystemConfig::paper_two_node_32();
    config.data_qubits_per_node = 4;
    config = config.with_backend(Backend::Auto);
    for trial in 0..25u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF ^ trial);
        let circuit = random_clifford(8, 90, 0.0, &mut rng);
        let compiled = CompiledCircuit::compile(&circuit, &config).unwrap();
        let outcomes = compiled
            .stabilizer_outcomes()
            .expect("Clifford circuits are certified under auto");
        let mut sv = Statevector::zero_state(8);
        sv.apply_circuit(&circuit).unwrap();
        for (q, outcome) in outcomes.iter().enumerate() {
            let p1 = sv.prob_one(q);
            match outcome {
                Some(bit) => {
                    let expected = if *bit { 1.0 } else { 0.0 };
                    assert!(
                        (p1 - expected).abs() <= NUMERIC_TOL,
                        "trial {trial}, qubit {q}: certified {bit}, dense p1 = {p1}"
                    );
                }
                None => assert!(
                    (p1 - 0.5).abs() <= NUMERIC_TOL,
                    "trial {trial}, qubit {q}: uncertified but dense p1 = {p1}"
                ),
            }
        }
    }
}

/// Seeded property loop: random Clifford circuits agree bit for bit
/// between the stabilizer and analytic engines, and within tolerance
/// against the density oracle, across random designs and seeds.
#[test]
fn random_cliffords_pin_tableau_against_density() {
    let mut config = SystemConfig::paper_two_node_32();
    config.data_qubits_per_node = 4;
    for trial in 0..10u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD1CE ^ trial);
        let circuit = random_clifford(8, 70, 0.0, &mut rng);
        differential_matrix(
            &format!("random-clifford[{trial}]"),
            &circuit,
            &config,
            trial,
        );
    }
}

/// Negative property: one non-Clifford gate anywhere disqualifies the
/// stabilizer path under `auto` — the compilation silently falls back to
/// the analytic engine instead of failing or mis-certifying.
#[test]
fn one_non_clifford_gate_disqualifies_auto_stabilizer() {
    let auto = SystemConfig::paper_two_node_32().with_backend(Backend::Auto);
    for trial in 0..10u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x7AB0 ^ trial);
        let clifford = random_clifford(32, 80, 0.0, &mut rng);
        let mut spoiled = clifford.clone();
        spoiled.t((trial % 32) as u32);

        let eligible = CompiledCircuit::compile(&clifford, &auto).unwrap();
        assert!(eligible.stabilizer_eligible(), "trial {trial}");
        assert_eq!(
            eligible.selected_backend(Design::AsyncBuf),
            Backend::Stabilizer,
            "trial {trial}"
        );

        let fallback = CompiledCircuit::compile(&spoiled, &auto).unwrap();
        assert!(!fallback.stabilizer_eligible(), "trial {trial}");
        assert_eq!(
            fallback.selected_backend(Design::AsyncBuf),
            Backend::Analytic,
            "trial {trial}"
        );
        // And the fallback is the analytic engine, not a near miss.
        let analytic =
            CompiledCircuit::compile(&spoiled, &SystemConfig::paper_two_node_32()).unwrap();
        assert_eq!(
            fallback.run(Design::AsyncBuf, trial).unwrap(),
            analytic.run(Design::AsyncBuf, trial).unwrap(),
            "trial {trial}"
        );
    }
}
