//! The static analyzer's two-sided contract, pinned against the shipped
//! corpus and a fixture per diagnostic code:
//!
//! * **No false positives** — everything the repo ships (every paper
//!   benchmark on its matching hardware point, the committed daemon
//!   configuration, the default `ServeConfig`, the serving portfolio)
//!   analyzes completely clean, warnings included.
//! * **No dead codes** — every code in `dqc_types::diag::REGISTRY` has a
//!   minimal fixture here that triggers exactly it, and a coverage
//!   assertion fails the suite if a registered code has no fixture.

use dqc::analyze::{AnalysisReport, Analyzer, PortfolioItem};
use dqc::circuit::Circuit;
use dqc::core::RemoteProtocol;
use dqc::entanglement::NetworkTopology;
use dqc::serve::{AutoscalePolicy, MetricsConfig, QuotaConfig, RateLimit};
use dqc::types::diag::REGISTRY;
use dqc::workloads::PaperBenchmark;
use dqc::{Backend, Design, ServeConfig, SystemConfig};
use std::collections::BTreeSet;

fn paper_config(bench: PaperBenchmark) -> SystemConfig {
    match bench.num_qubits() {
        32 => SystemConfig::paper_two_node_32(),
        _ => SystemConfig::paper_two_node_64(),
    }
}

// ------------------------------------------------------ no false positives

#[test]
fn shipped_benchmarks_analyze_clean_on_their_points() {
    let analyzer = Analyzer::new();
    for bench in PaperBenchmark::ALL {
        let report =
            analyzer.analyze_circuit(&bench.to_string(), &bench.circuit(), &paper_config(bench));
        assert!(report.is_clean(), "{bench} has findings: {report}");
    }
}

#[test]
fn committed_daemon_config_analyzes_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/configs/served.json");
    let text = std::fs::read_to_string(path).expect("configs/served.json is committed");
    let json = dqc::types::Json::parse(&text).expect("valid JSON");
    let config = ServeConfig::from_json(&json).expect("valid serving configuration");
    let report = Analyzer::new().analyze_serve_config(&config);
    assert!(report.is_clean(), "configs/served.json: {report}");
}

#[test]
fn default_serve_config_and_portfolio_analyze_clean() {
    let analyzer = Analyzer::new();
    let config = ServeConfig::default();
    assert!(analyzer.analyze_serve_config(&config).is_clean());
    let requests = dqc_bench::portfolio_requests(12, 1, 0, "paper", &[Design::AdaptBuf]);
    let items: Vec<PortfolioItem<'_>> = requests
        .iter()
        .map(|r| PortfolioItem {
            label: &r.circuit_label,
            circuit: r.circuit.as_ref(),
            point: &r.point,
            design: r.design,
        })
        .collect();
    assert!(analyzer.analyze_portfolio(&items, &config).is_clean());
}

// ----------------------------------------------------------- no dead codes

/// Each fixture returns the report that must contain its code (and may
/// contain nothing *else* unless noted — asserted per fixture).
fn fixture(code: &str) -> AnalysisReport {
    let analyzer = Analyzer::new();
    let paper = SystemConfig::paper_two_node_32;
    match code {
        "DQC-E001" => {
            // 40 data qubits can never fit 2 × 16. (Tree, not chain — a
            // chain would also trip the serialization lint.)
            analyzer.analyze_circuit("ghz-40", &dqc::workloads::ghz_tree(40), &paper())
        }
        "DQC-E002" => {
            // QFT's controlled-phase rotations are non-Clifford.
            let config = paper().with_backend(Backend::Stabilizer);
            analyzer.analyze_admission("qft-32", &dqc::workloads::qft(32), &config)
        }
        "DQC-E003" => {
            // 16 qubits exceed the density engine's 8-qubit oracle bound.
            let config = paper().with_backend(Backend::Density);
            analyzer.analyze_admission("ghz-16", &dqc::workloads::ghz_chain(16), &config)
        }
        "DQC-E004" => {
            // A 3-node graph contradicts the declared 2-node system.
            analyzer.analyze_topology(&NetworkTopology::chain(3), 2)
        }
        "DQC-E005" => {
            // Node 2 has no route to anyone.
            analyzer.analyze_topology(&NetworkTopology::from_edges(3, &[(0, 1)]), 3)
        }
        "DQC-E006" => {
            // Remote gates with zero communication qubits.
            let mut config = paper();
            config.comm_qubits_per_node = 0;
            analyzer.analyze_circuit("ghz-32", &dqc::workloads::ghz_tree(32), &config)
        }
        "DQC-E007" => {
            // Teledata holds 2 pairs per gate; the node stores only 1.
            let mut config = paper();
            config.remote_protocol = RemoteProtocol::StateTeleport;
            config.comm_qubits_per_node = 1;
            config.buffer_qubits_per_node = 0;
            analyzer.analyze_circuit("ghz-32", &dqc::workloads::ghz_tree(32), &config)
        }
        "DQC-E008" => {
            let config = ServeConfig {
                worker_budget: Some(2),
                autoscale: Some(AutoscalePolicy {
                    min_workers: 5,
                    ..AutoscalePolicy::default()
                }),
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-E009" => {
            let config = ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-E010" => {
            let config = ServeConfig {
                quota: QuotaConfig {
                    rate: Some(RateLimit {
                        per_sec: 0.0,
                        burst: 8.0,
                    }),
                    ..QuotaConfig::default()
                },
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-E011" => {
            let config = ServeConfig {
                autoscale: Some(AutoscalePolicy {
                    hot_fraction: 0.1,
                    cold_fraction: 0.5,
                    ..AutoscalePolicy::default()
                }),
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-E012" => {
            let config = ServeConfig {
                quota: QuotaConfig {
                    max_in_flight: Some(0),
                    ..QuotaConfig::default()
                },
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-W001" => {
            // Qubit 2 is declared but untouched.
            let mut circuit = Circuit::new(3);
            circuit.h(0).cx(0, 1);
            analyzer.lint_circuit("wasteful", &circuit)
        }
        "DQC-W002" => {
            // A gate lands on qubit 0 after its measurement.
            let mut circuit = Circuit::new(2);
            circuit.h(0).measure(0).cx(0, 1);
            analyzer.lint_circuit("post-measure", &circuit)
        }
        "DQC-W003" => {
            // One comm qubit at 40% success against QFT-32's ~256 remote
            // gates: generation dwarfs the critical path ~100-fold.
            let mut config = paper();
            config.comm_qubits_per_node = 1;
            analyzer.analyze_circuit("qft-32", &dqc::workloads::qft(32), &config)
        }
        "DQC-W004" => {
            // A GHZ chain is one serial dependency chain.
            analyzer.lint_circuit("ghz-8", &dqc::workloads::ghz_chain(8))
        }
        "DQC-W005" => {
            // The same evaluation twice with fusion disabled.
            let circuit = dqc::workloads::ghz_tree(8);
            let items = [
                PortfolioItem {
                    label: "dup",
                    circuit: &circuit,
                    point: "paper",
                    design: Design::AdaptBuf,
                },
                PortfolioItem {
                    label: "dup",
                    circuit: &circuit,
                    point: "paper",
                    design: Design::AdaptBuf,
                },
            ];
            let config = ServeConfig {
                fusion: false,
                ..ServeConfig::default()
            };
            analyzer.analyze_portfolio(&items, &config)
        }
        "DQC-W006" => {
            let config = ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-W007" => {
            let config = ServeConfig {
                autoscale: Some(AutoscalePolicy {
                    hysteresis_ticks: 0,
                    ..AutoscalePolicy::default()
                }),
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        "DQC-W008" => {
            // A zero-length latency window silently reports every
            // percentile as 0 — blind telemetry, not an error.
            let config = ServeConfig {
                metrics: MetricsConfig {
                    latency_window: 0,
                    ..MetricsConfig::default()
                },
                ..ServeConfig::default()
            };
            analyzer.analyze_serve_config(&config)
        }
        other => panic!("no fixture for `{other}` — add one to tests/analyze_clean.rs"),
    }
}

#[test]
fn every_registered_code_has_a_triggering_fixture() {
    let mut covered = BTreeSet::new();
    for info in REGISTRY {
        let report = fixture(info.code);
        assert!(
            report.codes().any(|c| c == info.code),
            "fixture for {} produced {report}",
            info.code
        );
        // Fixtures are minimal: exactly one finding, with the right
        // severity, that survives a JSON round trip.
        assert_eq!(
            report.diagnostics().len(),
            1,
            "{} fixture is not minimal: {report}",
            info.code
        );
        let diagnostic = &report.diagnostics()[0];
        assert_eq!(diagnostic.severity, info.severity, "{}", info.code);
        let json = diagnostic.to_json();
        assert_eq!(
            dqc::types::Diagnostic::from_json(&json).unwrap(),
            *diagnostic,
            "{} does not round-trip",
            info.code
        );
        covered.insert(info.code);
    }
    assert_eq!(covered.len(), REGISTRY.len(), "a code ran no fixture");
}
