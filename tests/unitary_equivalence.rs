//! Cross-crate correctness: scheduling transformations must never change
//! the computation. Verified against the dense simulators.

use dqc::circuit::{commutes, Circuit, Gate, Operation};
use dqc::core::{alap_variant, asap_variant, segment_sequence};
use dqc::partition::QubitMap;
use dqc::sim::{gate_matrix, Statevector};
use dqc::types::QubitId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random QAOA-flavoured circuit: rich in diagonal gates (which commute)
/// with occasional mixers (which block motion).
fn random_segment(n: u32, gates: usize, seed: u64) -> Circuit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.random_range(0..6u8) {
            0 => {
                c.rz(rng.random_range(0..n), rng.random_range(0.1..1.0));
            }
            1 => {
                c.rx(rng.random_range(0..n), rng.random_range(0.1..1.0));
            }
            2 | 3 => {
                let a = rng.random_range(0..n);
                let mut b = rng.random_range(0..n);
                while b == a {
                    b = rng.random_range(0..n);
                }
                c.rzz(a, b, rng.random_range(0.1..1.0));
            }
            4 => {
                let a = rng.random_range(0..n);
                let mut b = rng.random_range(0..n);
                while b == a {
                    b = rng.random_range(0..n);
                }
                c.cx(a, b);
            }
            _ => {
                c.h(rng.random_range(0..n));
            }
        }
    }
    c
}

fn state_after(ops: &[Operation], n: u32) -> Statevector {
    // A non-classical input state makes diagonal reorderings observable.
    let mut sv = Statevector::zero_state(n);
    for q in 0..n {
        sv.apply(&Operation::one(Gate::H, QubitId::new(q))).unwrap();
        sv.apply(&Operation::one(Gate::T, QubitId::new(q))).unwrap();
    }
    for op in ops {
        sv.apply(op).unwrap();
    }
    sv
}

#[test]
fn variants_preserve_unitaries_on_random_circuits() {
    let map = QubitMap::contiguous(6, 2); // qubits 0-2 | 3-5
    for seed in 0..30 {
        let circuit = random_segment(6, 24, seed);
        let reference = state_after(circuit.operations(), 6);
        let asap = asap_variant(circuit.operations(), &map);
        let alap = alap_variant(circuit.operations(), &map);
        for (label, variant) in [("asap", &asap), ("alap", &alap)] {
            let out = state_after(variant, 6);
            let fid = reference.fidelity(&out);
            assert!(
                (fid - 1.0).abs() < 1e-9,
                "seed {seed}: {label} variant changed the circuit (fidelity {fid})"
            );
        }
    }
}

#[test]
fn segment_concatenation_covers_whole_circuit() {
    let map = QubitMap::contiguous(6, 2);
    for seed in 0..10 {
        let circuit = random_segment(6, 40, seed + 100);
        for m in [1usize, 3, 7] {
            let segments = segment_sequence(circuit.operations(), &map, m);
            let total: usize = segments.iter().map(|s| s.len()).sum();
            assert_eq!(total, circuit.len());
            // Applying each segment's ASAP variant in order is still the
            // same circuit.
            let mut permuted: Vec<Operation> = Vec::new();
            for seg in &segments {
                permuted.extend(asap_variant(&circuit.operations()[seg.clone()], &map));
            }
            let reference = state_after(circuit.operations(), 6);
            let out = state_after(&permuted, 6);
            assert!(
                (reference.fidelity(&out) - 1.0).abs() < 1e-9,
                "seed {seed}, m {m}: segmented ASAP execution diverged"
            );
        }
    }
}

/// At statevector-infeasible scale, verify the variant machinery on
/// Clifford circuits with the stabilizer tableau: run variant ∘ inverse
/// (original) and check the result is the identity on |0…0⟩ plus random
/// stabilizer probes.
#[test]
fn variants_preserve_clifford_circuits_at_32_qubits() {
    let n = 32u32;
    let map = QubitMap::contiguous(n, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    for trial in 0..5 {
        let circuit = dqc::workloads::random_clifford(n, 160, 0.0, &mut rng);
        let inverse = circuit.inverse().expect("no measurements");
        for variant in [
            asap_variant(circuit.operations(), &map),
            alap_variant(circuit.operations(), &map),
        ] {
            let mut t = dqc::sim::Tableau::new(n as usize);
            // Random stabilizer probe state.
            let mut probe_rng = ChaCha8Rng::seed_from_u64(trial);
            let probe = dqc::workloads::random_clifford(n, 64, 0.0, &mut probe_rng);
            for op in probe.operations() {
                t.apply(op).unwrap();
            }
            // variant followed by inverse(original) must be the identity.
            for op in &variant {
                t.apply(op).unwrap();
            }
            for op in inverse.operations() {
                t.apply(op).unwrap();
            }
            // Undo the probe; the state must collapse back to |0…0⟩.
            for op in probe.inverse().unwrap().operations() {
                t.apply(op).unwrap();
            }
            for q in 0..n as usize {
                assert_eq!(
                    t.deterministic_outcome(q),
                    Some(false),
                    "trial {trial}: variant is not unitarily equivalent at 32 qubits"
                );
            }
        }
    }
}

/// QASM round trip preserves semantics: export, re-import, and compare
/// statevectors on random circuits.
#[test]
fn qasm_round_trip_preserves_semantics() {
    for seed in 0..10 {
        let circuit = random_segment(5, 20, seed + 900);
        let qasm = dqc::circuit::to_qasm(&circuit);
        let reimported = dqc::circuit::from_qasm(&qasm).expect("own output parses");
        let a = state_after(circuit.operations(), 5);
        let b = state_after(reimported.operations(), 5);
        let fid = a.fidelity(&b);
        assert!(
            (fid - 1.0).abs() < 1e-9,
            "seed {seed}: round trip changed the circuit (fidelity {fid})\n{qasm}"
        );
    }
}

/// Embeds an operation into an `n`-qubit unitary (qubit 0 = MSB).
fn embed(op: &Operation, n: u32) -> dqc::sim::Matrix {
    dqc::sim::embed_unitary(
        &gate_matrix(op.gate()),
        &op.qubits().iter().map(|q| q.as_usize()).collect::<Vec<_>>(),
        n as usize,
    )
}

/// Soundness of the commutation oracle on random operation pairs: a
/// `true` answer implies the 3-qubit embedded unitaries commute.
#[test]
fn commutation_rules_sound_on_random_pairs() {
    let mut gen = ChaCha8Rng::seed_from_u64(0xC077);
    for _ in 0..64 {
        let seed = gen.random_range(0u64..10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let circuit = random_segment(3, 2, rng.next_u64());
        let ops = circuit.operations();
        if ops.len() == 2 && commutes(&ops[0], &ops[1]) {
            let ua = embed(&ops[0], 3);
            let ub = embed(&ops[1], 3);
            assert!(
                ua.commutes_with(&ub, 1e-9),
                "{} vs {} claimed commuting",
                ops[0],
                ops[1]
            );
        }
    }
}

/// ASAP never moves a remote gate later, ALAP never earlier.
#[test]
fn variant_motion_is_directional() {
    let map = QubitMap::contiguous(4, 2);
    let mut gen = ChaCha8Rng::seed_from_u64(0xA5A9);
    for _ in 0..64 {
        let seed = gen.random_range(0u64..5_000);
        let circuit = random_segment(4, 12, seed);
        let remote_positions = |ops: &[Operation]| -> Vec<usize> {
            ops.iter()
                .enumerate()
                .filter(|(_, op)| map.is_remote(op))
                .map(|(i, _)| i)
                .collect()
        };
        let orig = remote_positions(circuit.operations());
        let asap = remote_positions(&asap_variant(circuit.operations(), &map));
        let alap = remote_positions(&alap_variant(circuit.operations(), &map));
        assert_eq!(orig.len(), asap.len());
        for (o, a) in orig.iter().zip(&asap) {
            assert!(a <= o, "asap moved a remote gate later: {o} -> {a}");
        }
        for (o, l) in orig.iter().zip(&alap) {
            assert!(l >= o, "alap moved a remote gate earlier: {o} -> {l}");
        }
    }
}
