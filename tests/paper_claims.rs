//! The paper's headline quantitative claims (§V), asserted as integration
//! tests with multi-run averages.

use dqc::workloads::PaperBenchmark;
use dqc::{AveragedReport, Design, Experiment, Sweep, SystemConfig};

const RUNS: usize = 20;
const SEED: u64 = 33;

/// All six designs on one benchmark, through the parallel sweep runner
/// (one compilation, one cell per design).
fn sweep(bench: PaperBenchmark, config: &SystemConfig) -> Vec<AveragedReport> {
    Sweep::new()
        .benchmark(bench)
        .config("cfg", config.clone())
        .designs(&Design::ALL)
        .runs(RUNS)
        .base_seed(SEED)
        .run()
        .unwrap()
        .cells
        .into_iter()
        .map(|cell| cell.report)
        .collect()
}

fn depth_of(reports: &[AveragedReport], design: Design) -> f64 {
    reports
        .iter()
        .find(|r| r.design == design)
        .unwrap()
        .mean_depth
}

fn fidelity_of(reports: &[AveragedReport], design: Design) -> f64 {
    reports
        .iter()
        .find(|r| r.design == design)
        .unwrap()
        .mean_fidelity
}

/// §V-A: "The largest reduction of the depth is achieved by leveraging
/// buffer qubits. The sync_buf design reduces the circuit depth by 61.7%."
/// We assert a ≥ 50 % average reduction across the four benchmarks.
#[test]
fn buffering_halves_depth_on_average() {
    let config = SystemConfig::paper_two_node_32();
    let mut reductions = Vec::new();
    for bench in PaperBenchmark::FIG5 {
        let reports = sweep(bench, &config);
        let orig = depth_of(&reports, Design::Original);
        let sync = depth_of(&reports, Design::SyncBuf);
        reductions.push(1.0 - sync / orig);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        mean >= 0.5,
        "mean depth reduction {mean:.3} below 50% (paper: 61.7%): {reductions:?}"
    );
}

/// §V-A: async_buf yields an additional average depth reduction over
/// sync_buf (paper: 7 %). We assert it is not worse on average and wins
/// clearly on the remote-heavy benchmarks.
#[test]
fn asynchrony_reduces_depth_on_remote_heavy_benchmarks() {
    let config = SystemConfig::paper_two_node_32();
    for bench in [PaperBenchmark::QaoaR8_32, PaperBenchmark::Qft32] {
        let reports = sweep(bench, &config);
        let sync = depth_of(&reports, Design::SyncBuf);
        let asyn = depth_of(&reports, Design::AsyncBuf);
        assert!(
            asyn < sync,
            "{bench}: async {asyn:.1} should beat sync {sync:.1}"
        );
    }
}

/// §V-A: init_buf achieves an additional depth reduction vs the
/// non-adaptive async_buf design (paper: 7.5 %).
#[test]
fn preinitialization_gives_additional_depth_reduction() {
    let config = SystemConfig::paper_two_node_32();
    let mut gains = Vec::new();
    for bench in PaperBenchmark::FIG5 {
        let reports = sweep(bench, &config);
        let asyn = depth_of(&reports, Design::AsyncBuf);
        let init = depth_of(&reports, Design::InitBuf);
        assert!(
            init <= asyn,
            "{bench}: init_buf {init:.1} must not exceed async_buf {asyn:.1}"
        );
        gains.push(1.0 - init / asyn);
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        mean >= 0.05,
        "mean init_buf gain {mean:.3} below 5% (paper: 7.5%)"
    );
}

/// §V-A: the distributed designs order original ≥ sync ≥ async ≥ adapt ≥
/// init ≥ ideal in depth on the remote-heavy benchmark.
#[test]
fn full_depth_ordering_on_qaoa_r8() {
    let config = SystemConfig::paper_two_node_32();
    let reports = sweep(PaperBenchmark::QaoaR8_32, &config);
    let d = |design| depth_of(&reports, design);
    assert!(d(Design::Original) > d(Design::SyncBuf));
    assert!(d(Design::SyncBuf) > d(Design::AsyncBuf));
    assert!(d(Design::AsyncBuf) >= d(Design::AdaptBuf) * 0.98);
    assert!(d(Design::AdaptBuf) >= d(Design::InitBuf) * 0.98);
    assert!(d(Design::InitBuf) > d(Design::Ideal));
}

/// §V-A (Fig. 6): original has the worst fidelity of all designs; every
/// buffered design improves on it; ideal bounds everything.
#[test]
fn fidelity_ordering_original_worst_ideal_best() {
    let config = SystemConfig::paper_two_node_32();
    for bench in [PaperBenchmark::QaoaR4_32, PaperBenchmark::QaoaR8_32] {
        let reports = sweep(bench, &config);
        let orig = fidelity_of(&reports, Design::Original);
        let ideal = fidelity_of(&reports, Design::Ideal);
        for design in Design::BUFFERED {
            let f = fidelity_of(&reports, design);
            assert!(
                f > orig,
                "{bench}: {design} fidelity {f:.4} should beat original {orig:.4}"
            );
            assert!(f < ideal, "{bench}: {design} cannot beat ideal");
        }
    }
}

/// §V-B (Fig. 7): increasing communication/buffer qubits reduces depth for
/// the buffered designs, and init_buf consistently delivers the best
/// depth; fidelity stays roughly flat.
#[test]
fn more_comm_qubits_reduce_depth_with_flat_fidelity() {
    let circuit = PaperBenchmark::QaoaR8_32.circuit();
    let mut previous_depth = f64::INFINITY;
    let mut fidelities = Vec::new();
    for n in [10usize, 15, 20] {
        let config = SystemConfig::paper_two_node_32().with_comm_and_buffer(n);
        let experiment = Experiment::new(&circuit, &config)
            .unwrap()
            .runs(RUNS)
            .base_seed(SEED);
        let init = experiment.clone().design(Design::InitBuf).run().unwrap();
        let sync = experiment.clone().design(Design::SyncBuf).run().unwrap();
        assert!(
            init.mean_depth <= sync.mean_depth,
            "comm={n}: init_buf must deliver the best depth"
        );
        assert!(
            init.mean_depth < previous_depth,
            "comm={n}: depth should fall as resources grow"
        );
        previous_depth = init.mean_depth;
        fidelities.push(init.mean_fidelity);
    }
    let max = fidelities.iter().cloned().fold(f64::MIN, f64::max);
    let min = fidelities.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.1,
        "fidelity should stay roughly flat across the sweep: {fidelities:?}"
    );
}

/// §V-C (Fig. 8): the proposed designs keep reducing depth on the larger
/// 64-qubit system, with init_buf beating sync_buf (paper: 12 %).
#[test]
fn larger_system_keeps_the_gains() {
    let config = SystemConfig::paper_two_node_64();
    for bench in PaperBenchmark::FIG8 {
        let reports = sweep(bench, &config);
        let orig = depth_of(&reports, Design::Original);
        let sync = depth_of(&reports, Design::SyncBuf);
        let init = depth_of(&reports, Design::InitBuf);
        assert!(sync < orig * 0.6, "{bench}: buffering still cuts >40%");
        assert!(
            init < sync * 0.95,
            "{bench}: init_buf {init:.1} should beat sync_buf {sync:.1} by >5%"
        );
    }
}

/// §V-A: QFT's fidelity collapses towards zero under distribution while
/// TLIM retains a usable fraction of the ideal fidelity — the remote-gate
/// fraction drives the damage.
#[test]
fn fidelity_damage_tracks_remote_fraction() {
    let config = SystemConfig::paper_two_node_32();
    let tlim = sweep(PaperBenchmark::Tlim32, &config);
    let qft = sweep(PaperBenchmark::Qft32, &config);
    let rel = |reports: &[AveragedReport]| {
        fidelity_of(reports, Design::AsyncBuf) / fidelity_of(reports, Design::Ideal)
    };
    assert!(rel(&tlim) > 0.3, "TLIM keeps a usable fidelity fraction");
    assert!(
        rel(&qft) < 0.01,
        "QFT fidelity collapses (paper: 0.08/0.50)"
    );
}
