//! # dqc — hardware-software co-design for distributed quantum computing
//!
//! A full-system reproduction of *"Hardware-Software Co-design for
//! Distributed Quantum Computing"* (DAC 2025): entanglement **buffering**,
//! **asynchronous** remote entanglement generation, and **adaptive**
//! remote-gate scheduling, evaluated by discrete-event simulation under the
//! paper's Table II device model.
//!
//! This facade crate re-exports the entire workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `dqc-types` | ids, [`types::Tick`], [`types::Fidelity`] |
//! | [`circuit`] | `dqc-circuit` | circuit IR, DAG, commutation, QASM |
//! | [`workloads`] | `dqc-workloads` | TLIM / QAOA / QFT generators |
//! | [`partition`] | `dqc-partition` | METIS-style multilevel partitioner |
//! | [`sim`] | `dqc-sim` | statevector / density / stabilizer engines |
//! | [`entanglement`] | `dqc-entanglement` | EPR generation + buffer service |
//! | [`core`] | `dqc-core` | the co-designed architecture + executor |
//!
//! # Quickstart
//!
//! ```
//! use dqc::core::{Design, SystemConfig};
//! use dqc::workloads::PaperBenchmark;
//!
//! # fn main() -> Result<(), dqc::core::EvaluateError> {
//! let circuit = PaperBenchmark::QaoaR4_32.circuit();
//! let config = SystemConfig::paper_two_node_32();
//! let report = dqc::core::evaluate(&circuit, &config, Design::AdaptBuf, 42)?;
//! println!(
//!     "depth {:.1} (CNOT units), fidelity {:.3}",
//!     report.depth_cnot_units(),
//!     report.fidelity().value()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dqc_circuit as circuit;
pub use dqc_core as core;
pub use dqc_entanglement as entanglement;
pub use dqc_partition as partition;
pub use dqc_sim as sim;
pub use dqc_types as types;
pub use dqc_workloads as workloads;
