//! # dqc — hardware-software co-design for distributed quantum computing
//!
//! A full-system reproduction of *"Hardware-Software Co-design for
//! Distributed Quantum Computing"* (DAC 2025): entanglement **buffering**,
//! **asynchronous** remote entanglement generation, and **adaptive**
//! remote-gate scheduling, evaluated by discrete-event simulation under the
//! paper's Table II device model.
//!
//! This facade crate re-exports the entire workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `dqc-types` | ids, [`types::Tick`], [`types::Fidelity`] |
//! | [`circuit`] | `dqc-circuit` | circuit IR, DAG, commutation, QASM |
//! | [`workloads`] | `dqc-workloads` | TLIM / QAOA / QFT generators |
//! | [`partition`] | `dqc-partition` | METIS-style multilevel partitioner |
//! | [`sim`] | `dqc-sim` | statevector / density / stabilizer engines |
//! | [`entanglement`] | `dqc-entanglement` | EPR generation + buffer service |
//! | [`core`] | `dqc-core` | the co-designed architecture + engine |
//! | [`analyze`] | `dqc-analyze` | static diagnostics: coded lints + feasibility proofs |
//! | [`codesign`] | `dqc-codesign` | design-space search + Pareto frontier |
//! | [`serve`] | `dqc-serve` | sharded compile-once serving layer |
//! | [`served`] | `dqc-served` | TCP daemon: frame protocol, QASM front door, quotas |
//! | [`obs`] | `dqc-obs` | tracing spans, metrics registry, profiling captures |
//!
//! The evaluation engine's main types — [`CompiledCircuit`],
//! [`Experiment`], [`Sweep`], [`Design`], [`SystemConfig`], [`DqcError`] —
//! the typed co-design layer ([`DesignSpace`], [`SpaceSweep`],
//! [`ScenarioKey`], [`Codesign`], [`CostModel`]), and the
//! network-topology types ([`NetworkTopology`], [`TopologyFamily`],
//! [`RoutingTable`], [`LinkParams`]), and the serving layer
//! ([`Server`], [`ServeBuilder`], [`ServeConfig`], [`EvalRequest`],
//! [`ServeStats`], [`ShutdownReport`], plus the network daemon's
//! [`Served`], [`ServedClient`], [`Submission`], and the static
//! analyzer's [`Analyzer`] and [`AnalysisReport`]) are additionally
//! re-exported at the crate root.
//!
//! # Quickstart
//!
//! Compile a benchmark once, then run any design over any seed range:
//!
//! ```
//! use dqc::workloads::PaperBenchmark;
//! use dqc::{Design, Experiment, SystemConfig};
//!
//! # fn main() -> Result<(), dqc::DqcError> {
//! let circuit = PaperBenchmark::QaoaR4_32.circuit();
//! let config = SystemConfig::paper_two_node_32();
//! let experiment = Experiment::new(&circuit, &config)?; // compiles once
//! let avg = experiment.clone().design(Design::AdaptBuf).runs(20).run()?;
//! println!(
//!     "adapt_buf: depth {:.1} CNOT-units ({:.2}x ideal), fidelity {:.3}",
//!     avg.mean_depth, avg.mean_depth_relative, avg.mean_fidelity
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Reproduce a whole paper figure as one parallel [`Sweep`]:
//!
//! ```
//! use dqc::workloads::PaperBenchmark;
//! use dqc::{Design, Sweep, SystemConfig};
//!
//! # fn main() -> Result<(), dqc::DqcError> {
//! let result = Sweep::new()
//!     .benchmarks([PaperBenchmark::Tlim32, PaperBenchmark::QaoaR4_32])
//!     .config("paper", SystemConfig::paper_two_node_32())
//!     .designs(&Design::ALL)
//!     .runs(5)
//!     .run()?; // thread-parallel, deterministic, ordered
//! for cell in &result.cells {
//!     println!("{} / {}: {}", cell.circuit, cell.design, cell.report);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dqc_analyze as analyze;
pub use dqc_circuit as circuit;
pub use dqc_codesign as codesign;
pub use dqc_core as core;
pub use dqc_entanglement as entanglement;
pub use dqc_obs as obs;
pub use dqc_partition as partition;
pub use dqc_serve as serve;
pub use dqc_served as served;
pub use dqc_sim as sim;
pub use dqc_types as types;
pub use dqc_workloads as workloads;

pub use dqc_analyze::{AnalysisReport, Analyzer};
pub use dqc_codesign::{Codesign, CodesignResult, CostModel, Objectives, SearchStrategy};
pub use dqc_core::{
    AveragedReport, Axis, AxisValue, Backend, CompiledCircuit, Design, DesignSpace, DqcError,
    ExecutionReport, Experiment, ScenarioKey, SpaceResult, SpaceSweep, Sweep, SweepCell,
    SweepResult, SystemConfig,
};
pub use dqc_entanglement::{LinkParams, NetworkTopology, Route, RoutingTable, TopologyFamily};
pub use dqc_serve::{
    AutoscalePolicy, EvalOutput, EvalRequest, EvalResponse, QuotaConfig, RateLimit, RequestId,
    ServeBuilder, ServeConfig, ServeError, ServeStats, Server, ShutdownReport, WorkerPlacement,
};
pub use dqc_served::{Served, ServedBuilder, ServedClient, Submission, WireError};
